// The gladiators-and-citizens mechanism of Fig. 1, narrated.
//
//   $ ./gladiators_and_citizens
//
// Upsilon's stable output U splits the processes: those inside U
// ("gladiators") must eliminate one of their values via
// (|U|-1)-convergence; those outside ("citizens") park their value in
// D[r] and move on. Either a gladiator is faulty (convergence commits)
// or a citizen is correct (its D[r] write frees everyone) — that is the
// whole trick. This example prints the role every process takes in each
// round and where the eliminated value went.
#include <cstdio>
#include <map>

#include "wfd.h"

int main() {
  using namespace wfd;

  const int n_plus_1 = 5;
  const auto fp = sim::FailurePattern::failureFree(n_plus_1);
  // Force the interesting split: U = {p1,p2,p3}; p4,p5 are citizens.
  const ProcSet u{0, 1, 2};
  const auto upsilon = fd::makeUpsilon(fp, u, /*stab_time=*/0);

  sim::RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.fd = upsilon;
  cfg.policy = sim::PolicyKind::kRoundRobin;  // lockstep: no early commit
  const std::vector<Value> proposals = {101, 102, 103, 104, 105};
  const auto result = sim::runTask(
      cfg,
      [](sim::Env& env, Value v) { return core::upsilonSetAgreement(env, v); },
      proposals);

  std::printf("stable Upsilon output U = %s (never the correct set!)\n\n",
              u.toString().c_str());
  std::map<Pid, std::string> last_role;
  for (const auto& e : result.trace().events()) {
    switch (e.kind) {
      case sim::EventKind::kPropose:
        std::printf("t=%4lld  p%d proposes %s\n",
                    static_cast<long long>(e.time), e.pid + 1,
                    e.value.toString().c_str());
        break;
      case sim::EventKind::kNote:
        if (e.label != last_role[e.pid]) {  // only report role changes
          last_role[e.pid] = e.label;
          std::printf("t=%4lld  p%d acts as %s of %s\n",
                      static_cast<long long>(e.time), e.pid + 1,
                      e.label.c_str(), e.value.toString().c_str());
        }
        break;
      case sim::EventKind::kDecide:
        std::printf("t=%4lld  p%d DECIDES %s\n",
                    static_cast<long long>(e.time), e.pid + 1,
                    e.value.toString().c_str());
        break;
      default:
        break;
    }
  }

  const auto rep = core::checkKSetAgreement(result, n_plus_1 - 1, proposals);
  std::printf("\n%d distinct values decided (<= n = %d): %s\n", rep.distinct,
              n_plus_1 - 1, rep.ok() ? "Theorem 2 holds" : "VIOLATION");
  return rep.ok() ? 0 : 1;
}
