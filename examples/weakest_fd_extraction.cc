// Fig. 3 live: squeezing Upsilon out of a stronger detector.
//
//   $ ./weakest_fd_extraction
//
// Theorem 10: ANY stable failure detector that circumvents some wait-free
// impossibility already contains Upsilon. Here the source is Omega (the
// consensus-grade detector): processes report its output through shared
// registers, and once the value d looks stable, phi_Omega(d) names a set
// that cannot be the correct set. Watch the emulated output converge.
#include <cstdio>

#include "wfd.h"

int main() {
  using namespace wfd;

  const int n_plus_1 = 4;
  const auto fp = sim::FailurePattern::withCrashes(n_plus_1, {{1, 400}});
  const Time stab = 600;
  const auto omega = fd::makeOmega(fp, stab, /*noise_seed=*/3);

  sim::RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.fd = omega;
  cfg.seed = 11;
  cfg.max_steps = 60'000;
  const auto phi = core::phiOmegaK(n_plus_1);
  const auto result = sim::runTask(
      cfg,
      [phi](sim::Env& env, Value) { return core::extractUpsilonF(env, phi); },
      std::vector<Value>(n_plus_1, 0));

  std::printf("source: Omega, noisy until t=%lld; p2 crashes at t=400\n\n",
              static_cast<long long>(stab));
  std::printf("emulated Upsilon output timeline (changes only):\n");
  for (const auto& e : result.trace().ofKind(sim::EventKind::kPublish)) {
    std::printf("  t=%6lld  p%d -> %s\n", static_cast<long long>(e.time),
                e.pid + 1, e.value.toString().c_str());
  }

  const auto rep = core::checkEmulatedUpsilonF(result, n_plus_1 - 1);
  std::printf("\nfinal emulated output: %s (correct set is %s)\n",
              rep.stable_value.toString().c_str(),
              fp.correct().toString().c_str());
  std::printf("stabilized=%s legal=%s last change at t=%lld\n",
              rep.stabilized ? "yes" : "NO", rep.legal ? "yes" : "NO",
              static_cast<long long>(rep.last_change));
  return rep.ok() ? 0 : 1;
}
