// Quickstart: solve wait-free n-set-agreement with the weakest stable
// failure detector, in ~30 lines of user code.
//
//   $ ./quickstart
//
// Four processes propose distinct values; up to three may crash; the
// only failure information is Upsilon — eventually, one set that is NOT
// the set of correct processes. Theorem 2 says that's enough to decide
// on at most three values.
#include <cstdio>

#include "wfd.h"

int main() {
  using namespace wfd;

  const int n_plus_1 = 4;

  // 1. Pick a failure pattern for the run: p3 crashes at step 150.
  const auto fp = sim::FailurePattern::withCrashes(n_plus_1, {{2, 150}});

  // 2. Pick an Upsilon history for that pattern: noisy until step 300,
  //    then forever the (legal) set {p1,p2,p3} != correct(F).
  const auto upsilon = fd::makeUpsilon(fp, ProcSet{0, 1, 2},
                                       /*stab_time=*/300, /*noise_seed=*/42);

  // 3. Run the Fig. 1 protocol at every process.
  sim::RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.fd = upsilon;
  cfg.seed = 7;
  const std::vector<Value> proposals = {10, 20, 30, 40};
  const auto result = sim::runTask(
      cfg,
      [](sim::Env& env, Value v) { return core::upsilonSetAgreement(env, v); },
      proposals);

  // 4. Inspect and verify.
  std::printf("run finished after %lld simulated steps\n",
              static_cast<long long>(result.steps));
  for (const auto& [pid, v] : result.decisions) {
    std::printf("  p%d decided %lld\n", pid + 1, static_cast<long long>(v));
  }
  const auto report =
      core::checkKSetAgreement(result, n_plus_1 - 1, proposals);
  std::printf("termination=%s validity=%s agreement=%s (distinct=%d <= n=%d)\n",
              report.termination ? "yes" : "NO",
              report.validity ? "yes" : "NO", report.agreement ? "yes" : "NO",
              report.distinct, n_plus_1 - 1);
  return report.ok() ? 0 : 1;
}
