// A tour of the failure detector zoo and the weaker-than lattice.
//
//   $ ./fd_zoo
//
// Shows, on one failure pattern, what each shipped detector reports
// before and after stabilization, and demonstrates the reduction lattice
// the paper situates Upsilon in:
//
//        P  ≥  <>P  ≥  Omega  ≥  Omega_n  ≥  Upsilon  ≥  (anti-Omega)
//
// ("≥" = "provides at least as much failure information": each arrow is
// an executable reduction in core/reductions.h or fd/mapped.h.)
#include <cstdio>

#include "wfd.h"

namespace {

using namespace wfd;

void showHistory(const fd::FailureDetector& d, Time stab) {
  std::printf("  %-12s", d.name().c_str());
  for (Time t : {Time{0}, Time{5}, stab / 2, stab + 1, stab + 100}) {
    std::printf("  t=%-4lld %-14s", static_cast<long long>(t),
                d.query(0, t).toString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace wfd;

  const int n_plus_1 = 4;
  const Time stab = 500;
  const auto fp = sim::FailurePattern::withCrashes(n_plus_1, {{2, 100}});
  std::printf("failure pattern: p3 crashes at t=100; correct = %s\n\n",
              fp.correct().toString().c_str());

  std::printf("histories at p1 (noisy, then stable):\n");
  showHistory(*fd::makePerfect(fp), stab);
  showHistory(*fd::makeEventuallyPerfect(fp, stab, 1), stab);
  showHistory(*fd::makeOmega(fp, stab, 2), stab);
  showHistory(*fd::makeOmegaK(fp, n_plus_1 - 1, stab, 3), stab);
  showHistory(*fd::makeUpsilon(fp, stab, 4), stab);
  showHistory(*fd::makeAntiOmega(fp, stab, 5), stab);

  std::printf("\nreductions down the lattice (each checked by its axioms):\n");

  auto runReduction = [&](const char* label, fd::FdPtr src,
                          const sim::AlgoFn& algo, bool omega_target) {
    sim::RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = std::move(src);
    cfg.max_steps = 40'000;
    const auto rr = sim::runTask(
        cfg, algo, std::vector<Value>(n_plus_1, 0));
    const auto rep = omega_target
                         ? core::checkEmulatedOmega(rr)
                         : core::checkEmulatedUpsilonF(rr, n_plus_1 - 1);
    std::printf("  %-28s -> %-14s %s\n", label,
                rep.stable_value.toString().c_str(),
                rep.ok() ? "ok" : "FAIL");
    return rep.ok();
  };

  bool ok = true;
  ok &= runReduction("<>P -> Omega", fd::makeEventuallyPerfect(fp, stab, 1),
                     [](sim::Env& e, Value) { return core::diamondPToOmega(e); },
                     /*omega_target=*/true);
  ok &= runReduction("Omega_n -> Upsilon",
                     fd::makeOmegaK(fp, n_plus_1 - 1, stab, 3),
                     [](sim::Env& e, Value) { return core::omegaKToUpsilonF(e); },
                     /*omega_target=*/false);
  // P is a legal <>P history; Omega is Omega^1; a stable anti-Omega
  // history is a legal Upsilon history — three "free" lattice edges:
  std::printf("  %-28s -> %-14s %s\n", "P is a <>P history", "(axioms)",
              fd::checkEventuallyPerfect(*fd::makePerfect(fp), fp, stab + 200)
                      .ok
                  ? "ok"
                  : "FAIL");
  std::printf("  %-28s -> %-14s %s\n", "anti-Omega is an Upsilon", "(axioms)",
              fd::checkUpsilonF(*fd::makeAntiOmega(fp, stab, 5), fp,
                                n_plus_1 - 1, stab + 200)
                      .ok
                  ? "ok"
                  : "FAIL");

  std::printf("\nand the floor: Theorem 10 extracts Upsilon from ANY stable\n");
  std::printf("non-trivial detector — try ./weakest_fd_extraction next.\n");
  return ok ? 0 : 1;
}
