// Realistic workload: bounding checkpoint divergence in a replicated
// service with almost no failure information.
//
//   $ ./replicated_checkpointing
//
// Scenario (the kind the paper's introduction motivates): n+1 replica
// coordinators each build a local checkpoint per epoch and would like to
// agree which one becomes durable. Full consensus needs Omega-grade
// failure information; but if the storage layer can tolerate keeping up
// to n candidate checkpoints per epoch (garbage-collecting the rest
// lazily), n-set-agreement suffices — and Theorem 2 says the *weakest*
// non-trivial detector, Upsilon, already powers that. This example runs
// one Fig. 1 instance per epoch (the multi-instance API), with replicas
// crashing along the way, and reports the per-epoch divergence bound
// holding.
#include <cstdio>
#include <map>
#include <set>

#include "wfd.h"

namespace {

using namespace wfd;

constexpr int kReplicas = 5;  // n+1
constexpr int kEpochs = 8;

// A replica coordinator: per epoch, propose the id of the locally built
// checkpoint (replica id * 1000 + epoch), run that epoch's set-agreement
// instance, and note which checkpoint it will retain.
sim::Coro<sim::Unit> replica(sim::Env& env, Value) {
  for (int epoch = 1; epoch <= kEpochs; ++epoch) {
    const Value local_checkpoint = (env.me() + 1) * 1000 + epoch;
    const Value durable = co_await core::upsilonSetAgreementInstance(
        env, epoch, local_checkpoint);
    env.note("epoch" + std::to_string(epoch), RegVal(durable));
  }
  co_return sim::Unit{};
}

}  // namespace

int main() {
  using namespace wfd;

  // Two replicas die mid-run; Upsilon stabilizes lazily.
  const auto fp = sim::FailurePattern::withCrashes(
      kReplicas, {{1, 900}, {4, 2500}});
  sim::RunConfig cfg;
  cfg.n_plus_1 = kReplicas;
  cfg.fp = fp;
  cfg.fd = fd::makeUpsilon(fp, /*stab_time=*/700, /*noise_seed=*/13);
  cfg.seed = 21;
  cfg.max_steps = 2'000'000;
  const auto rr = sim::runTask(
      cfg, [](sim::Env& e, Value v) { return replica(e, v); },
      std::vector<Value>(kReplicas, 0));

  // Harvest per-epoch retained checkpoints.
  std::map<int, std::set<Value>> retained;
  std::map<int, int> reporters;
  for (const auto& e : rr.trace().events()) {
    if (e.kind != sim::EventKind::kNote || e.label.rfind("epoch", 0) != 0) {
      continue;
    }
    const int epoch = std::stoi(e.label.substr(5));
    retained[epoch].insert(e.value.asInt());
    ++reporters[epoch];
  }

  std::printf("replicas=%d epochs=%d crashes: p2@900 p5@2500\n\n", kReplicas,
              kEpochs);
  bool all_bounded = true;
  for (int epoch = 1; epoch <= kEpochs; ++epoch) {
    const auto& set = retained[epoch];
    const bool bounded = static_cast<int>(set.size()) <= kReplicas - 1;
    all_bounded = all_bounded && bounded;
    std::printf("epoch %d: %d replicas reported, %zu durable checkpoint(s):",
                epoch, reporters[epoch], set.size());
    for (Value v : set) std::printf(" %lld", static_cast<long long>(v));
    std::printf("  [divergence <= n: %s]\n", bounded ? "yes" : "NO");
  }
  std::printf("\nsurviving replicas all finished: %s\n",
              rr.all_correct_done ? "yes" : "NO");
  std::printf("every epoch within the n-checkpoint bound: %s\n",
              all_bounded ? "yes" : "NO");
  return (rr.all_correct_done && all_bounded) ? 0 : 1;
}
