// Sect. 4's boundary case: with two processes, Upsilon IS Omega.
//
//   $ ./two_process_equivalence
//
// Runs both reductions (complement each way) on all three failure
// patterns of a 2-process system and then uses Upsilon — through the
// equivalence — to solve consensus (2-process set agreement = consensus).
#include <cstdio>

#include "wfd.h"

namespace {

using namespace wfd;

bool reduceBothWays(const sim::FailurePattern& fp, const char* label) {
  // Upsilon -> Omega.
  sim::RunConfig cfg;
  cfg.n_plus_1 = 2;
  cfg.fp = fp;
  cfg.fd = fd::makeUpsilon(fp, 200, 5);
  cfg.max_steps = 20'000;
  const auto a = sim::runTask(
      cfg,
      [](sim::Env& e, Value) { return core::upsilonToOmegaTwoProcs(e); },
      {0, 0});
  const auto ra = core::checkEmulatedOmega(a);

  // Omega -> Upsilon.
  cfg.fd = fd::makeOmega(fp, 200, 5);
  const auto b = sim::runTask(
      cfg, [](sim::Env& e, Value) { return core::omegaKToUpsilonF(e); },
      {0, 0});
  const auto rb = core::checkEmulatedUpsilonF(b, 1);

  std::printf("%-12s Upsilon->Omega: leader %-6s %s   Omega->Upsilon: %-6s %s\n",
              label, ra.stable_value.toString().c_str(),
              ra.ok() ? "ok" : "FAIL", rb.stable_value.toString().c_str(),
              rb.ok() ? "ok" : "FAIL");
  return ra.ok() && rb.ok();
}

}  // namespace

int main() {
  using namespace wfd;

  std::puts("two processes: Upsilon and Omega are the same information\n");
  bool ok = true;
  ok &= reduceBothWays(sim::FailurePattern::failureFree(2), "no crash");
  ok &= reduceBothWays(sim::FailurePattern::withCrashes(2, {{0, 60}}),
                       "p1 crashes");
  ok &= reduceBothWays(sim::FailurePattern::withCrashes(2, {{1, 60}}),
                       "p2 crashes");

  // Consensus from Upsilon alone (1-set-agreement among 2 processes).
  const auto fp = sim::FailurePattern::withCrashes(2, {{1, 100}});
  sim::RunConfig cfg;
  cfg.n_plus_1 = 2;
  cfg.fp = fp;
  cfg.fd = fd::makeUpsilon(fp, 150, 9);
  const std::vector<Value> props = {7, 8};
  const auto rr = sim::runTask(
      cfg,
      [](sim::Env& e, Value v) { return core::upsilonSetAgreement(e, v); },
      props);
  const auto rep = core::checkKSetAgreement(rr, 1, props);
  std::printf("\nconsensus via Upsilon: p1 decided %lld (agreement=%s)\n",
              static_cast<long long>(rr.decisions.at(0)),
              rep.ok() ? "yes" : "NO");
  return (ok && rep.ok()) ? 0 : 1;
}
