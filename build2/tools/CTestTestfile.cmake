# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build2/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools.determinism_check "/root/repo/build2/tools/determinism_check" "--jobs" "4" "--steal" "--memo")
set_tests_properties(tools.determinism_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools.determinism_check_fabric "/root/repo/build2/tools/determinism_check" "--procs" "2" "--jobs" "2" "--steal" "--memo")
set_tests_properties(tools.determinism_check_fabric PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools.chaos_coverage "/root/repo/build2/bench/bench_chaos" "--quick" "--jobs" "4")
set_tests_properties(tools.chaos_coverage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools.model_lint "/root/.pyenv/shims/python3" "/root/repo/tools/model_lint.py" "--root" "/root/repo")
set_tests_properties(tools.model_lint PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools.model_lint_selftest "/root/.pyenv/shims/python3" "/root/repo/tools/model_lint.py" "--self-test")
set_tests_properties(tools.model_lint_selftest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;30;add_test;/root/repo/tools/CMakeLists.txt;0;")
