# Empty dependencies file for determinism_check.
# This may be replaced when dependencies are built.
