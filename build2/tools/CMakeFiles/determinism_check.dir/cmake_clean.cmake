file(REMOVE_RECURSE
  "CMakeFiles/determinism_check.dir/determinism_check.cc.o"
  "CMakeFiles/determinism_check.dir/determinism_check.cc.o.d"
  "determinism_check"
  "determinism_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/determinism_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
