file(REMOVE_RECURSE
  "CMakeFiles/gladiators_and_citizens.dir/gladiators_and_citizens.cc.o"
  "CMakeFiles/gladiators_and_citizens.dir/gladiators_and_citizens.cc.o.d"
  "gladiators_and_citizens"
  "gladiators_and_citizens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gladiators_and_citizens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
