# Empty dependencies file for gladiators_and_citizens.
# This may be replaced when dependencies are built.
