file(REMOVE_RECURSE
  "CMakeFiles/weakest_fd_extraction.dir/weakest_fd_extraction.cc.o"
  "CMakeFiles/weakest_fd_extraction.dir/weakest_fd_extraction.cc.o.d"
  "weakest_fd_extraction"
  "weakest_fd_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weakest_fd_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
