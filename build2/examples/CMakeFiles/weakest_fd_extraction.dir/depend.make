# Empty dependencies file for weakest_fd_extraction.
# This may be replaced when dependencies are built.
