# Empty compiler generated dependencies file for replicated_checkpointing.
# This may be replaced when dependencies are built.
