file(REMOVE_RECURSE
  "CMakeFiles/replicated_checkpointing.dir/replicated_checkpointing.cc.o"
  "CMakeFiles/replicated_checkpointing.dir/replicated_checkpointing.cc.o.d"
  "replicated_checkpointing"
  "replicated_checkpointing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_checkpointing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
