file(REMOVE_RECURSE
  "CMakeFiles/fd_zoo.dir/fd_zoo.cc.o"
  "CMakeFiles/fd_zoo.dir/fd_zoo.cc.o.d"
  "fd_zoo"
  "fd_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
