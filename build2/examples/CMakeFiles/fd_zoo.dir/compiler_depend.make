# Empty compiler generated dependencies file for fd_zoo.
# This may be replaced when dependencies are built.
