# Empty compiler generated dependencies file for two_process_equivalence.
# This may be replaced when dependencies are built.
