file(REMOVE_RECURSE
  "CMakeFiles/two_process_equivalence.dir/two_process_equivalence.cc.o"
  "CMakeFiles/two_process_equivalence.dir/two_process_equivalence.cc.o.d"
  "two_process_equivalence"
  "two_process_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_process_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
