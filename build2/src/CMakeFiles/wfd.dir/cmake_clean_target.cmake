file(REMOVE_RECURSE
  "libwfd.a"
)
