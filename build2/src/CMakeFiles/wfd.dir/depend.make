# Empty dependencies file for wfd.
# This may be replaced when dependencies are built.
