
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/proc_set.cc" "src/CMakeFiles/wfd.dir/common/proc_set.cc.o" "gcc" "src/CMakeFiles/wfd.dir/common/proc_set.cc.o.d"
  "/root/repo/src/common/reg_val.cc" "src/CMakeFiles/wfd.dir/common/reg_val.cc.o" "gcc" "src/CMakeFiles/wfd.dir/common/reg_val.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/wfd.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/wfd.dir/common/rng.cc.o.d"
  "/root/repo/src/core/ablations.cc" "src/CMakeFiles/wfd.dir/core/ablations.cc.o" "gcc" "src/CMakeFiles/wfd.dir/core/ablations.cc.o.d"
  "/root/repo/src/core/adversary.cc" "src/CMakeFiles/wfd.dir/core/adversary.cc.o" "gcc" "src/CMakeFiles/wfd.dir/core/adversary.cc.o.d"
  "/root/repo/src/core/bg_simulation.cc" "src/CMakeFiles/wfd.dir/core/bg_simulation.cc.o" "gcc" "src/CMakeFiles/wfd.dir/core/bg_simulation.cc.o.d"
  "/root/repo/src/core/boosting.cc" "src/CMakeFiles/wfd.dir/core/boosting.cc.o" "gcc" "src/CMakeFiles/wfd.dir/core/boosting.cc.o.d"
  "/root/repo/src/core/candidates.cc" "src/CMakeFiles/wfd.dir/core/candidates.cc.o" "gcc" "src/CMakeFiles/wfd.dir/core/candidates.cc.o.d"
  "/root/repo/src/core/checkers.cc" "src/CMakeFiles/wfd.dir/core/checkers.cc.o" "gcc" "src/CMakeFiles/wfd.dir/core/checkers.cc.o.d"
  "/root/repo/src/core/extraction.cc" "src/CMakeFiles/wfd.dir/core/extraction.cc.o" "gcc" "src/CMakeFiles/wfd.dir/core/extraction.cc.o.d"
  "/root/repo/src/core/kconverge.cc" "src/CMakeFiles/wfd.dir/core/kconverge.cc.o" "gcc" "src/CMakeFiles/wfd.dir/core/kconverge.cc.o.d"
  "/root/repo/src/core/omega_impl.cc" "src/CMakeFiles/wfd.dir/core/omega_impl.cc.o" "gcc" "src/CMakeFiles/wfd.dir/core/omega_impl.cc.o.d"
  "/root/repo/src/core/omega_k_set_agreement.cc" "src/CMakeFiles/wfd.dir/core/omega_k_set_agreement.cc.o" "gcc" "src/CMakeFiles/wfd.dir/core/omega_k_set_agreement.cc.o.d"
  "/root/repo/src/core/phi_maps.cc" "src/CMakeFiles/wfd.dir/core/phi_maps.cc.o" "gcc" "src/CMakeFiles/wfd.dir/core/phi_maps.cc.o.d"
  "/root/repo/src/core/reductions.cc" "src/CMakeFiles/wfd.dir/core/reductions.cc.o" "gcc" "src/CMakeFiles/wfd.dir/core/reductions.cc.o.d"
  "/root/repo/src/core/safe_agreement.cc" "src/CMakeFiles/wfd.dir/core/safe_agreement.cc.o" "gcc" "src/CMakeFiles/wfd.dir/core/safe_agreement.cc.o.d"
  "/root/repo/src/core/samples.cc" "src/CMakeFiles/wfd.dir/core/samples.cc.o" "gcc" "src/CMakeFiles/wfd.dir/core/samples.cc.o.d"
  "/root/repo/src/core/upsilon_f_set_agreement.cc" "src/CMakeFiles/wfd.dir/core/upsilon_f_set_agreement.cc.o" "gcc" "src/CMakeFiles/wfd.dir/core/upsilon_f_set_agreement.cc.o.d"
  "/root/repo/src/core/upsilon_set_agreement.cc" "src/CMakeFiles/wfd.dir/core/upsilon_set_agreement.cc.o" "gcc" "src/CMakeFiles/wfd.dir/core/upsilon_set_agreement.cc.o.d"
  "/root/repo/src/fd/anti_omega.cc" "src/CMakeFiles/wfd.dir/fd/anti_omega.cc.o" "gcc" "src/CMakeFiles/wfd.dir/fd/anti_omega.cc.o.d"
  "/root/repo/src/fd/axioms.cc" "src/CMakeFiles/wfd.dir/fd/axioms.cc.o" "gcc" "src/CMakeFiles/wfd.dir/fd/axioms.cc.o.d"
  "/root/repo/src/fd/mapped.cc" "src/CMakeFiles/wfd.dir/fd/mapped.cc.o" "gcc" "src/CMakeFiles/wfd.dir/fd/mapped.cc.o.d"
  "/root/repo/src/fd/omega.cc" "src/CMakeFiles/wfd.dir/fd/omega.cc.o" "gcc" "src/CMakeFiles/wfd.dir/fd/omega.cc.o.d"
  "/root/repo/src/fd/perfect.cc" "src/CMakeFiles/wfd.dir/fd/perfect.cc.o" "gcc" "src/CMakeFiles/wfd.dir/fd/perfect.cc.o.d"
  "/root/repo/src/fd/scripted.cc" "src/CMakeFiles/wfd.dir/fd/scripted.cc.o" "gcc" "src/CMakeFiles/wfd.dir/fd/scripted.cc.o.d"
  "/root/repo/src/fd/upsilon.cc" "src/CMakeFiles/wfd.dir/fd/upsilon.cc.o" "gcc" "src/CMakeFiles/wfd.dir/fd/upsilon.cc.o.d"
  "/root/repo/src/memory/immediate_snapshot.cc" "src/CMakeFiles/wfd.dir/memory/immediate_snapshot.cc.o" "gcc" "src/CMakeFiles/wfd.dir/memory/immediate_snapshot.cc.o.d"
  "/root/repo/src/memory/linearizability.cc" "src/CMakeFiles/wfd.dir/memory/linearizability.cc.o" "gcc" "src/CMakeFiles/wfd.dir/memory/linearizability.cc.o.d"
  "/root/repo/src/memory/mwmr.cc" "src/CMakeFiles/wfd.dir/memory/mwmr.cc.o" "gcc" "src/CMakeFiles/wfd.dir/memory/mwmr.cc.o.d"
  "/root/repo/src/memory/snapshot_afek.cc" "src/CMakeFiles/wfd.dir/memory/snapshot_afek.cc.o" "gcc" "src/CMakeFiles/wfd.dir/memory/snapshot_afek.cc.o.d"
  "/root/repo/src/sim/batch.cc" "src/CMakeFiles/wfd.dir/sim/batch.cc.o" "gcc" "src/CMakeFiles/wfd.dir/sim/batch.cc.o.d"
  "/root/repo/src/sim/chaos.cc" "src/CMakeFiles/wfd.dir/sim/chaos.cc.o" "gcc" "src/CMakeFiles/wfd.dir/sim/chaos.cc.o.d"
  "/root/repo/src/sim/explore.cc" "src/CMakeFiles/wfd.dir/sim/explore.cc.o" "gcc" "src/CMakeFiles/wfd.dir/sim/explore.cc.o.d"
  "/root/repo/src/sim/fabric/fabric.cc" "src/CMakeFiles/wfd.dir/sim/fabric/fabric.cc.o" "gcc" "src/CMakeFiles/wfd.dir/sim/fabric/fabric.cc.o.d"
  "/root/repo/src/sim/fabric/store.cc" "src/CMakeFiles/wfd.dir/sim/fabric/store.cc.o" "gcc" "src/CMakeFiles/wfd.dir/sim/fabric/store.cc.o.d"
  "/root/repo/src/sim/fabric/wire.cc" "src/CMakeFiles/wfd.dir/sim/fabric/wire.cc.o" "gcc" "src/CMakeFiles/wfd.dir/sim/fabric/wire.cc.o.d"
  "/root/repo/src/sim/failure_pattern.cc" "src/CMakeFiles/wfd.dir/sim/failure_pattern.cc.o" "gcc" "src/CMakeFiles/wfd.dir/sim/failure_pattern.cc.o.d"
  "/root/repo/src/sim/net/heartbeat.cc" "src/CMakeFiles/wfd.dir/sim/net/heartbeat.cc.o" "gcc" "src/CMakeFiles/wfd.dir/sim/net/heartbeat.cc.o.d"
  "/root/repo/src/sim/net/net_world.cc" "src/CMakeFiles/wfd.dir/sim/net/net_world.cc.o" "gcc" "src/CMakeFiles/wfd.dir/sim/net/net_world.cc.o.d"
  "/root/repo/src/sim/net/realized_fd.cc" "src/CMakeFiles/wfd.dir/sim/net/realized_fd.cc.o" "gcc" "src/CMakeFiles/wfd.dir/sim/net/realized_fd.cc.o.d"
  "/root/repo/src/sim/object_table.cc" "src/CMakeFiles/wfd.dir/sim/object_table.cc.o" "gcc" "src/CMakeFiles/wfd.dir/sim/object_table.cc.o.d"
  "/root/repo/src/sim/report_cache.cc" "src/CMakeFiles/wfd.dir/sim/report_cache.cc.o" "gcc" "src/CMakeFiles/wfd.dir/sim/report_cache.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/CMakeFiles/wfd.dir/sim/runner.cc.o" "gcc" "src/CMakeFiles/wfd.dir/sim/runner.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/CMakeFiles/wfd.dir/sim/scheduler.cc.o" "gcc" "src/CMakeFiles/wfd.dir/sim/scheduler.cc.o.d"
  "/root/repo/src/sim/step_audit.cc" "src/CMakeFiles/wfd.dir/sim/step_audit.cc.o" "gcc" "src/CMakeFiles/wfd.dir/sim/step_audit.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/wfd.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/wfd.dir/sim/trace.cc.o.d"
  "/root/repo/src/sim/watchdog.cc" "src/CMakeFiles/wfd.dir/sim/watchdog.cc.o" "gcc" "src/CMakeFiles/wfd.dir/sim/watchdog.cc.o.d"
  "/root/repo/src/sim/world.cc" "src/CMakeFiles/wfd.dir/sim/world.cc.o" "gcc" "src/CMakeFiles/wfd.dir/sim/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
