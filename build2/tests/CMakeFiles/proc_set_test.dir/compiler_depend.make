# Empty compiler generated dependencies file for proc_set_test.
# This may be replaced when dependencies are built.
