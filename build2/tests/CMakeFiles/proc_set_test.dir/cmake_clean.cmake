file(REMOVE_RECURSE
  "CMakeFiles/proc_set_test.dir/proc_set_test.cc.o"
  "CMakeFiles/proc_set_test.dir/proc_set_test.cc.o.d"
  "proc_set_test"
  "proc_set_test.pdb"
  "proc_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proc_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
