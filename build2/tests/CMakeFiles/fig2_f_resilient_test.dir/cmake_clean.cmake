file(REMOVE_RECURSE
  "CMakeFiles/fig2_f_resilient_test.dir/fig2_f_resilient_test.cc.o"
  "CMakeFiles/fig2_f_resilient_test.dir/fig2_f_resilient_test.cc.o.d"
  "fig2_f_resilient_test"
  "fig2_f_resilient_test.pdb"
  "fig2_f_resilient_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_f_resilient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
