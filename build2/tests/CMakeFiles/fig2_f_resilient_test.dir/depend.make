# Empty dependencies file for fig2_f_resilient_test.
# This may be replaced when dependencies are built.
