file(REMOVE_RECURSE
  "CMakeFiles/bg_simulation_test.dir/bg_simulation_test.cc.o"
  "CMakeFiles/bg_simulation_test.dir/bg_simulation_test.cc.o.d"
  "bg_simulation_test"
  "bg_simulation_test.pdb"
  "bg_simulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bg_simulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
