file(REMOVE_RECURSE
  "CMakeFiles/step_audit_test.dir/step_audit_test.cc.o"
  "CMakeFiles/step_audit_test.dir/step_audit_test.cc.o.d"
  "step_audit_test"
  "step_audit_test.pdb"
  "step_audit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/step_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
