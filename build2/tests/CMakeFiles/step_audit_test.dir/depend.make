# Empty dependencies file for step_audit_test.
# This may be replaced when dependencies are built.
