file(REMOVE_RECURSE
  "CMakeFiles/fd_lattice_test.dir/fd_lattice_test.cc.o"
  "CMakeFiles/fd_lattice_test.dir/fd_lattice_test.cc.o.d"
  "fd_lattice_test"
  "fd_lattice_test.pdb"
  "fd_lattice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_lattice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
