file(REMOVE_RECURSE
  "CMakeFiles/fig1_set_agreement_test.dir/fig1_set_agreement_test.cc.o"
  "CMakeFiles/fig1_set_agreement_test.dir/fig1_set_agreement_test.cc.o.d"
  "fig1_set_agreement_test"
  "fig1_set_agreement_test.pdb"
  "fig1_set_agreement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_set_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
