file(REMOVE_RECURSE
  "CMakeFiles/report_cache_test.dir/report_cache_test.cc.o"
  "CMakeFiles/report_cache_test.dir/report_cache_test.cc.o.d"
  "report_cache_test"
  "report_cache_test.pdb"
  "report_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
