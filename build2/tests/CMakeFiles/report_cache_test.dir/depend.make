# Empty dependencies file for report_cache_test.
# This may be replaced when dependencies are built.
