file(REMOVE_RECURSE
  "CMakeFiles/golden_hash_test.dir/golden_hash_test.cc.o"
  "CMakeFiles/golden_hash_test.dir/golden_hash_test.cc.o.d"
  "golden_hash_test"
  "golden_hash_test.pdb"
  "golden_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
