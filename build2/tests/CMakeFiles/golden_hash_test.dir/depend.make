# Empty dependencies file for golden_hash_test.
# This may be replaced when dependencies are built.
