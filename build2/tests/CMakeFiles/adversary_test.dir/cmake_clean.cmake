file(REMOVE_RECURSE
  "CMakeFiles/adversary_test.dir/adversary_test.cc.o"
  "CMakeFiles/adversary_test.dir/adversary_test.cc.o.d"
  "adversary_test"
  "adversary_test.pdb"
  "adversary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
