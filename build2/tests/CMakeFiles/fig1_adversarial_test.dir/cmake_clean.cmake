file(REMOVE_RECURSE
  "CMakeFiles/fig1_adversarial_test.dir/fig1_adversarial_test.cc.o"
  "CMakeFiles/fig1_adversarial_test.dir/fig1_adversarial_test.cc.o.d"
  "fig1_adversarial_test"
  "fig1_adversarial_test.pdb"
  "fig1_adversarial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_adversarial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
