# Empty compiler generated dependencies file for perfect_fd_test.
# This may be replaced when dependencies are built.
