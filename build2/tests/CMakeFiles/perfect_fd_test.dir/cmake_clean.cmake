file(REMOVE_RECURSE
  "CMakeFiles/perfect_fd_test.dir/perfect_fd_test.cc.o"
  "CMakeFiles/perfect_fd_test.dir/perfect_fd_test.cc.o.d"
  "perfect_fd_test"
  "perfect_fd_test.pdb"
  "perfect_fd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfect_fd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
