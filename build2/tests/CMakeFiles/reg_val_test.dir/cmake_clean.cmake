file(REMOVE_RECURSE
  "CMakeFiles/reg_val_test.dir/reg_val_test.cc.o"
  "CMakeFiles/reg_val_test.dir/reg_val_test.cc.o.d"
  "reg_val_test"
  "reg_val_test.pdb"
  "reg_val_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reg_val_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
