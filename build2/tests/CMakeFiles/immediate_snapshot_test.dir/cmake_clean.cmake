file(REMOVE_RECURSE
  "CMakeFiles/immediate_snapshot_test.dir/immediate_snapshot_test.cc.o"
  "CMakeFiles/immediate_snapshot_test.dir/immediate_snapshot_test.cc.o.d"
  "immediate_snapshot_test"
  "immediate_snapshot_test.pdb"
  "immediate_snapshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/immediate_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
