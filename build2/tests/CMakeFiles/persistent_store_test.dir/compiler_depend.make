# Empty compiler generated dependencies file for persistent_store_test.
# This may be replaced when dependencies are built.
