file(REMOVE_RECURSE
  "CMakeFiles/persistent_store_test.dir/persistent_store_test.cc.o"
  "CMakeFiles/persistent_store_test.dir/persistent_store_test.cc.o.d"
  "persistent_store_test"
  "persistent_store_test.pdb"
  "persistent_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
