file(REMOVE_RECURSE
  "CMakeFiles/stale_view_test.dir/stale_view_test.cc.o"
  "CMakeFiles/stale_view_test.dir/stale_view_test.cc.o.d"
  "stale_view_test"
  "stale_view_test.pdb"
  "stale_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stale_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
