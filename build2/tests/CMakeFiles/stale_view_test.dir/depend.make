# Empty dependencies file for stale_view_test.
# This may be replaced when dependencies are built.
