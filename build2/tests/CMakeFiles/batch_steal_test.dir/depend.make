# Empty dependencies file for batch_steal_test.
# This may be replaced when dependencies are built.
