file(REMOVE_RECURSE
  "CMakeFiles/batch_steal_test.dir/batch_steal_test.cc.o"
  "CMakeFiles/batch_steal_test.dir/batch_steal_test.cc.o.d"
  "batch_steal_test"
  "batch_steal_test.pdb"
  "batch_steal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_steal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
