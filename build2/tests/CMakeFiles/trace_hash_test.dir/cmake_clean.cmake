file(REMOVE_RECURSE
  "CMakeFiles/trace_hash_test.dir/trace_hash_test.cc.o"
  "CMakeFiles/trace_hash_test.dir/trace_hash_test.cc.o.d"
  "trace_hash_test"
  "trace_hash_test.pdb"
  "trace_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
