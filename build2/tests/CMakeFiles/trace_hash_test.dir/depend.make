# Empty dependencies file for trace_hash_test.
# This may be replaced when dependencies are built.
