# Empty compiler generated dependencies file for boosting_test.
# This may be replaced when dependencies are built.
