file(REMOVE_RECURSE
  "CMakeFiles/boosting_test.dir/boosting_test.cc.o"
  "CMakeFiles/boosting_test.dir/boosting_test.cc.o.d"
  "boosting_test"
  "boosting_test.pdb"
  "boosting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boosting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
