# Empty compiler generated dependencies file for mwmr_test.
# This may be replaced when dependencies are built.
