file(REMOVE_RECURSE
  "CMakeFiles/mwmr_test.dir/mwmr_test.cc.o"
  "CMakeFiles/mwmr_test.dir/mwmr_test.cc.o.d"
  "mwmr_test"
  "mwmr_test.pdb"
  "mwmr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwmr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
