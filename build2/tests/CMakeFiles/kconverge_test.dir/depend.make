# Empty dependencies file for kconverge_test.
# This may be replaced when dependencies are built.
