file(REMOVE_RECURSE
  "CMakeFiles/kconverge_test.dir/kconverge_test.cc.o"
  "CMakeFiles/kconverge_test.dir/kconverge_test.cc.o.d"
  "kconverge_test"
  "kconverge_test.pdb"
  "kconverge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kconverge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
