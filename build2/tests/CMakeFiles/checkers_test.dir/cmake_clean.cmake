file(REMOVE_RECURSE
  "CMakeFiles/checkers_test.dir/checkers_test.cc.o"
  "CMakeFiles/checkers_test.dir/checkers_test.cc.o.d"
  "checkers_test"
  "checkers_test.pdb"
  "checkers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
