# Empty compiler generated dependencies file for checkers_test.
# This may be replaced when dependencies are built.
