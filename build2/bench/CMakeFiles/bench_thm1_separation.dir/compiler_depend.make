# Empty compiler generated dependencies file for bench_thm1_separation.
# This may be replaced when dependencies are built.
