file(REMOVE_RECURSE
  "CMakeFiles/bench_equivalences.dir/bench_equivalences.cc.o"
  "CMakeFiles/bench_equivalences.dir/bench_equivalences.cc.o.d"
  "bench_equivalences"
  "bench_equivalences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_equivalences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
