# Empty dependencies file for bench_equivalences.
# This may be replaced when dependencies are built.
