file(REMOVE_RECURSE
  "CMakeFiles/bench_fabric.dir/bench_fabric.cc.o"
  "CMakeFiles/bench_fabric.dir/bench_fabric.cc.o.d"
  "bench_fabric"
  "bench_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
