# Empty dependencies file for bench_fabric.
# This may be replaced when dependencies are built.
