file(REMOVE_RECURSE
  "CMakeFiles/bench_audit_overhead.dir/bench_audit_overhead.cc.o"
  "CMakeFiles/bench_audit_overhead.dir/bench_audit_overhead.cc.o.d"
  "bench_audit_overhead"
  "bench_audit_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_audit_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
