# Empty dependencies file for bench_audit_overhead.
# This may be replaced when dependencies are built.
