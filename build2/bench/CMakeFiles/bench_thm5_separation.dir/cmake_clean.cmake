file(REMOVE_RECURSE
  "CMakeFiles/bench_thm5_separation.dir/bench_thm5_separation.cc.o"
  "CMakeFiles/bench_thm5_separation.dir/bench_thm5_separation.cc.o.d"
  "bench_thm5_separation"
  "bench_thm5_separation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm5_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
