file(REMOVE_RECURSE
  "CMakeFiles/bench_core.dir/bench_core.cc.o"
  "CMakeFiles/bench_core.dir/bench_core.cc.o.d"
  "bench_core"
  "bench_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
