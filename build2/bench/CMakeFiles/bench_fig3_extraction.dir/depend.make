# Empty dependencies file for bench_fig3_extraction.
# This may be replaced when dependencies are built.
