file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_extraction.dir/bench_fig3_extraction.cc.o"
  "CMakeFiles/bench_fig3_extraction.dir/bench_fig3_extraction.cc.o.d"
  "bench_fig3_extraction"
  "bench_fig3_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
