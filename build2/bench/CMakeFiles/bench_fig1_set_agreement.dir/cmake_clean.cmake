file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_set_agreement.dir/bench_fig1_set_agreement.cc.o"
  "CMakeFiles/bench_fig1_set_agreement.dir/bench_fig1_set_agreement.cc.o.d"
  "bench_fig1_set_agreement"
  "bench_fig1_set_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_set_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
