# Empty compiler generated dependencies file for bench_fig1_set_agreement.
# This may be replaced when dependencies are built.
