# Empty dependencies file for bench_explore.
# This may be replaced when dependencies are built.
