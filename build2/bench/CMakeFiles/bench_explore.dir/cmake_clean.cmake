file(REMOVE_RECURSE
  "CMakeFiles/bench_explore.dir/bench_explore.cc.o"
  "CMakeFiles/bench_explore.dir/bench_explore.cc.o.d"
  "bench_explore"
  "bench_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
