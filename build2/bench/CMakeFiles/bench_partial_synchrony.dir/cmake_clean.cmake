file(REMOVE_RECURSE
  "CMakeFiles/bench_partial_synchrony.dir/bench_partial_synchrony.cc.o"
  "CMakeFiles/bench_partial_synchrony.dir/bench_partial_synchrony.cc.o.d"
  "bench_partial_synchrony"
  "bench_partial_synchrony.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partial_synchrony.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
