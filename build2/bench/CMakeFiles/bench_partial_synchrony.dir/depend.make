# Empty dependencies file for bench_partial_synchrony.
# This may be replaced when dependencies are built.
