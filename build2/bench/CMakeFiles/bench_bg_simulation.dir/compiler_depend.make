# Empty compiler generated dependencies file for bench_bg_simulation.
# This may be replaced when dependencies are built.
