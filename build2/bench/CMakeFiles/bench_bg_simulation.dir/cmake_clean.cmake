file(REMOVE_RECURSE
  "CMakeFiles/bench_bg_simulation.dir/bench_bg_simulation.cc.o"
  "CMakeFiles/bench_bg_simulation.dir/bench_bg_simulation.cc.o.d"
  "bench_bg_simulation"
  "bench_bg_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bg_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
