# Empty compiler generated dependencies file for bench_fig2_f_resilient.
# This may be replaced when dependencies are built.
