file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_f_resilient.dir/bench_fig2_f_resilient.cc.o"
  "CMakeFiles/bench_fig2_f_resilient.dir/bench_fig2_f_resilient.cc.o.d"
  "bench_fig2_f_resilient"
  "bench_fig2_f_resilient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_f_resilient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
