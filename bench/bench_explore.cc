// bench_explore: schedule-space explorer coverage and reduction factors.
//
// Measures the DPOR explorer (sim/explore.h) against ground truth on the
// bounded k-converge workload whose schedule spaces are known in closed
// form: C(8,4) = 70 interleavings at n = 2 and 12!/(4!)^3 = 34650 at
// n = 3 (63,063,000 at n = 4, enumerated by nobody). Three engines per
// size where tractable:
//
//   brute   every multiset permutation through a ScriptedPolicy run
//   dpor    dynamic partial-order reduction + sleep sets
//   dag     complete stateful search with state-digest memoization
//
// The bench GATES its own correctness (exit non-zero on violation):
//   * every honest-protocol verdict is kVerified and complete,
//   * the n = 2 outcome sets of dpor/dag equal the brute-force oracle,
//   * dpor explores at least 5x fewer schedules than the n = 3
//     permutation count,
//   * a seeded agreement bug is caught, with a replayable counterexample.
//
// Output: a table plus (with --json) BENCH_explore.json. --quick holds
// the bench to n <= 3 (the CI per-push smoke); full mode adds the n = 4
// DPOR sweep (nightly).
//
//   bench_explore [--quick] [--json PATH]
#include <functional>
#include <memory>
#include <set>

#include "bench_util.h"

namespace wfd::bench {
namespace {

using core::kConverge;
using core::Pick;
using sim::Coro;
using sim::Env;
using sim::ExploreConfig;
using sim::ExploreMode;
using sim::ExploreOutcome;
using sim::ExploreResult;
using sim::ExploreVerdict;
using sim::RunConfig;
using sim::Unit;

Coro<Unit> oneShot(Env& env, int k, Value v) {
  env.propose(v);
  const Pick p = co_await kConverge(env, sim::ObjKey{"x.conv"}, k, v);
  env.note(p.committed ? "commit" : "adopt", RegVal(p.value));
  env.decide(p.value);
  co_return Unit{};
}

// The seeded negative control: commit-adopt that wrongly adopts its OWN
// value on disagreement (same bug as tests/explore_test.cc).
Coro<Unit> buggyOneShot(Env& env, Value v) {
  env.propose(v);
  const mem::SnapshotHandle s =
      mem::makeSnapshot(env, sim::ObjKey{"x.bug"}, env.nProcs());
  co_await mem::snapshotUpdate(env, s, env.me(), RegVal(v));
  const std::vector<RegVal> view = co_await mem::snapshotScan(env, s);
  const std::vector<Value> u = mem::distinctValues(view);
  env.note(u.size() <= 1 ? "commit" : "adopt", RegVal(v));
  env.decide(v);
  co_return Unit{};
}

std::vector<Value> distinctProps(int n) {
  std::vector<Value> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = 100 + i;
  return v;
}

// Per-process (picked, committed) vector — the schedule-invariant the
// outcome sets are compared on.
using PickVec = std::vector<std::pair<Value, bool>>;

PickVec picksOf(const std::vector<sim::Event>& events, int n) {
  PickVec out(static_cast<std::size_t>(n), {kBottomValue, false});
  for (const auto& e : events) {
    if (e.kind != sim::EventKind::kNote) continue;
    out[static_cast<std::size_t>(e.pid)] = {e.value.asInt(),
                                            e.label == "commit"};
  }
  return out;
}

std::string convergeViolation(const PickVec& px, int k) {
  bool any_commit = false;
  std::set<Value> vals;
  for (const auto& [v, committed] : px) {
    if (v == kBottomValue) continue;
    vals.insert(v);
    any_commit = any_commit || committed;
  }
  if (any_commit && static_cast<int>(vals.size()) > k) {
    return "commit with " + std::to_string(vals.size()) + " > k = " +
           std::to_string(k) + " distinct picks";
  }
  return "";
}

// ---- Engines -------------------------------------------------------------

struct EngineRow {
  std::uint64_t schedules = 0;
  std::uint64_t pruned = 0;
  std::uint64_t memoized = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t steps_executed = 0;
  std::uint64_t steps_replayed = 0;
  std::uint64_t restores = 0;
  bool verified = false;
  bool complete = false;
  double seconds = 0;
  std::set<PickVec> outcomes;
};

// Brute force: every distinct multiset permutation, one full run each.
EngineRow bruteForce(int n, int k) {
  const std::vector<Value> props = distinctProps(n);
  EngineRow row;
  const WallTimer t;
  std::vector<int> remaining(static_cast<std::size_t>(n), 4);
  std::vector<Pid> seq;
  bool ok = true;
  const std::function<void()> rec = [&] {
    if (static_cast<int>(seq.size()) == n * 4) {
      RunConfig cfg;
      cfg.n_plus_1 = n;
      sim::Run run(cfg, [k](Env& e, Value v) { return oneShot(e, k, v); },
                   props);
      sim::ScriptedPolicy policy(seq,
                                 std::make_unique<sim::RoundRobinPolicy>());
      const Time taken = run.scheduler().run(policy, 10'000);
      row.steps_executed += static_cast<std::uint64_t>(taken);
      const auto rr = run.finish(taken);
      const PickVec px = picksOf(rr.trace().events(), n);
      ok = ok && convergeViolation(px, k).empty();
      row.outcomes.insert(px);
      ++row.schedules;
      return;
    }
    for (Pid p = 0; p < n; ++p) {
      if (remaining[static_cast<std::size_t>(p)] == 0) continue;
      --remaining[static_cast<std::size_t>(p)];
      seq.push_back(p);
      rec();
      seq.pop_back();
      ++remaining[static_cast<std::size_t>(p)];
    }
  };
  rec();
  row.seconds = t.seconds();
  row.verified = ok;
  row.complete = true;
  return row;
}

EngineRow explorer(int n, int k, ExploreMode mode,
                   std::uint64_t max_schedules = 1'000'000) {
  const std::vector<Value> props = distinctProps(n);
  ExploreConfig cfg;
  cfg.run.n_plus_1 = n;
  cfg.mode = mode;
  cfg.max_schedules = max_schedules;
  cfg.property = [n, k](const ExploreOutcome& o) {
    return convergeViolation(picksOf(o.events, n), k);
  };
  const WallTimer t;
  const ExploreResult res = explore(
      cfg, [k](Env& e, Value v) { return oneShot(e, k, v); }, props);
  EngineRow row;
  row.seconds = t.seconds();
  row.schedules = res.schedules_explored;
  row.pruned = res.schedules_pruned;
  row.memoized = res.states_memoized;
  row.memo_hits = res.memo_hits;
  row.steps_executed = res.steps_executed;
  row.steps_replayed = res.steps_replayed;
  row.restores = res.restores;
  row.verified = res.verdict == ExploreVerdict::kVerified;
  row.complete = res.complete;
  for (const auto& [sig, o] : res.outcomes) {
    row.outcomes.insert(picksOf(o.events, n));
  }
  return row;
}

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  using namespace wfd;
  using namespace wfd::bench;

  const BenchArgs args = BenchArgs::parse(argc, argv);

  banner("schedule-space explorer (sim/explore.h)");
  Table table({"engine", "n+1", "schedules", "pruned", "memo", "steps",
               "replayed", "restores", "verdict", "seconds"});
  JsonWriter json("bench_explore", args.jobs);
  json.note("mode", args.quick ? "quick" : "full");

  int gates_failed = 0;
  const auto gate = [&](bool ok, const char* what) {
    if (!ok) {
      ++gates_failed;
      std::printf("GATE FAILED: %s\n", what);
    }
  };

  std::map<std::string, EngineRow> rows;
  const auto report = [&](const std::string& name, int n,
                          const EngineRow& row) {
    table.addRow({name, fmt(n), fmt(static_cast<Time>(row.schedules)),
                  fmt(static_cast<Time>(row.pruned)),
                  fmt(static_cast<Time>(row.memoized)),
                  fmt(static_cast<Time>(row.steps_executed)),
                  fmt(static_cast<Time>(row.steps_replayed)),
                  fmt(static_cast<Time>(row.restores)),
                  row.verified ? (row.complete ? "verified" : "cut")
                               : "VIOLATION",
                  fmt(row.seconds)});
    json.row(name,
             {{"n_plus_1", static_cast<double>(n)},
              {"schedules_explored", static_cast<double>(row.schedules)},
              {"schedules_pruned", static_cast<double>(row.pruned)},
              {"states_memoized", static_cast<double>(row.memoized)},
              {"memo_hits", static_cast<double>(row.memo_hits)},
              {"steps_executed", static_cast<double>(row.steps_executed)},
              {"steps_replayed", static_cast<double>(row.steps_replayed)},
              {"restores", static_cast<double>(row.restores)},
              {"verified", row.verified ? 1.0 : 0.0},
              {"complete", row.complete ? 1.0 : 0.0},
              {"seconds", row.seconds}});
    rows[name] = row;
  };

  // n = 2: 1-converge, all three engines, outcome sets must agree.
  report("brute-n2", 2, bruteForce(2, 1));
  report("dpor-n2", 2, explorer(2, 1, ExploreMode::kDpor));
  report("dag-n2", 2, explorer(2, 1, ExploreMode::kDag));
  gate(rows["brute-n2"].schedules == 70, "brute n=2 enumerates C(8,4) = 70");
  gate(rows["brute-n2"].verified && rows["dpor-n2"].verified &&
           rows["dag-n2"].verified,
       "honest protocol verified at n=2 by every engine");
  gate(rows["dpor-n2"].outcomes == rows["brute-n2"].outcomes,
       "dpor n=2 outcome set equals the brute-force oracle");
  gate(rows["dag-n2"].outcomes == rows["brute-n2"].outcomes,
       "dag n=2 outcome set equals the brute-force oracle");

  // n = 3: 2-converge; brute force only in full mode (34650 runs).
  if (!args.quick) report("brute-n3", 3, bruteForce(3, 2));
  report("dpor-n3", 3, explorer(3, 2, ExploreMode::kDpor));
  report("dag-n3", 3, explorer(3, 2, ExploreMode::kDag));
  const double n3_reduction =
      34650.0 / static_cast<double>(rows["dpor-n3"].schedules);
  gate(rows["dpor-n3"].verified && rows["dpor-n3"].complete,
       "dpor n=3 verifies the honest protocol");
  gate(rows["dpor-n3"].schedules * 5 <= 34650,
       "dpor n=3 explores at least 5x fewer schedules than enumeration");
  gate(rows["dpor-n3"].outcomes == rows["dag-n3"].outcomes,
       "dpor and dag agree on the n=3 outcome set");
  if (!args.quick) {
    gate(rows["brute-n3"].outcomes == rows["dpor-n3"].outcomes,
         "dpor n=3 outcome set equals the brute-force oracle");
  }

  // n = 4: DPOR only, full mode only; the permutation count is 6.3e7.
  if (!args.quick) {
    report("dpor-n4", 4, explorer(4, 3, ExploreMode::kDpor, 200'000));
    gate(rows["dpor-n4"].verified, "dpor n=4 finds no violation");
  }

  // The seeded bug: the explorer must catch it with a counterexample.
  {
    ExploreConfig cfg;
    cfg.run.n_plus_1 = 2;
    cfg.mode = ExploreMode::kDpor;
    cfg.property = [](const ExploreOutcome& o) {
      return convergeViolation(picksOf(o.events, 2), 1);
    };
    const WallTimer t;
    const ExploreResult res =
        explore(cfg, [](Env& e, Value v) { return buggyOneShot(e, v); },
                {100, 101});
    const bool caught = res.verdict == ExploreVerdict::kViolation &&
                        !res.counterexample.empty();
    gate(caught, "seeded agreement bug caught with a counterexample");
    if (caught) {
      std::printf("seeded bug caught: %s [schedule: %s]\n",
                  res.violation.c_str(), res.counterexampleString().c_str());
    }
    json.row("bug-hunt-n2",
             {{"schedules_explored",
               static_cast<double>(res.schedules_explored)},
              {"caught", caught ? 1.0 : 0.0},
              {"counterexample_len",
               static_cast<double>(res.counterexample.size())},
              {"seconds", t.seconds()}});
  }

  table.print();
  std::printf("headline: dpor n=3 %llu schedules vs 34650 enumerated "
              "(%.1fx reduction), gates %s\n",
              static_cast<unsigned long long>(rows["dpor-n3"].schedules),
              n3_reduction, gates_failed == 0 ? "PASS" : "FAIL");

  json.metric("dpor_n3_schedules",
              static_cast<double>(rows["dpor-n3"].schedules));
  json.metric("dpor_n3_reduction_factor", n3_reduction);
  json.metric("gates_failed", gates_failed);
  if (!args.json_path.empty() && !json.write(args.json_path)) return 1;
  return gates_failed == 0 ? 0 : 1;
}
