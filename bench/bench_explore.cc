// bench_explore: schedule-space explorer coverage, reduction factors, and
// the parallel-frontier / certificate-store gates.
//
// Measures the DPOR explorer (sim/explore.h) against ground truth on the
// bounded k-converge workload whose schedule spaces are known in closed
// form: C(8,4) = 70 interleavings at n = 2 and 12!/(4!)^3 = 34650 at
// n = 3 (63,063,000 at n = 4, enumerated by nobody). Engines per size
// where tractable:
//
//   brute     every multiset permutation through a ScriptedPolicy run
//   dpor      dynamic partial-order reduction + sleep sets
//   dag       complete stateful search with state-digest memoization
//   *-fN      the parallel frontier engine with N workers
//
// The bench GATES its own correctness (exit non-zero on violation):
//   * every honest-protocol verdict is kVerified and complete,
//   * the n = 2 outcome sets of dpor/dag equal the brute-force oracle,
//   * dpor explores at least 5x fewer schedules than the n = 3
//     permutation count,
//   * frontier jobs=4 is BIT-IDENTICAL to jobs=1 (verdict, outcome set,
//     counterexample, every search counter) and the n = 3 sweep shows a
//     >= 3x step-makespan reduction at jobs=4,
//   * a bounded Fig. 1 (n+1 = 3) Upsilon set-agreement instance is
//     certified by kDpor under the refined FD-independence relation and
//     cross-checked for outcome-set equality against kDag,
//   * the persistent certificate store serves warm re-runs (hit), resumes
//     interrupted frontiers (per-job hits), and cold-misses — never
//     wrong-hits — on a version mismatch,
//   * a seeded agreement bug is caught, with a replayable counterexample.
//
// Output: a table plus (with --json) BENCH_explore.json; CI compares the
// JSON against the committed bench/BENCH_explore.baseline.json with
// tools/bench_compare.py. --quick holds the bench to n <= 3 (the CI
// per-push smoke); full mode adds the n = 4 frontier campaign (nightly).
//
//   bench_explore [--quick] [--jobs N] [--cache-dir D] [--keep-cache]
//                 [--json PATH]
#include <algorithm>
#include <filesystem>
#include <functional>
#include <memory>
#include <set>

#include "bench_util.h"
#include "sim/fabric/store.h"

namespace wfd::bench {
namespace {

using core::kConverge;
using core::Pick;
using sim::Coro;
using sim::Env;
using sim::ExploreConfig;
using sim::ExploreMode;
using sim::ExploreOutcome;
using sim::ExploreResult;
using sim::ExploreVerdict;
using sim::RunConfig;
using sim::Unit;

Coro<Unit> oneShot(Env& env, int k, Value v) {
  env.propose(v);
  const Pick p = co_await kConverge(env, sim::ObjKey{"x.conv"}, k, v);
  env.note(p.committed ? "commit" : "adopt", RegVal(p.value));
  env.decide(p.value);
  co_return Unit{};
}

// The seeded negative control: commit-adopt that wrongly adopts its OWN
// value on disagreement (same bug as tests/explore_test.cc).
Coro<Unit> buggyOneShot(Env& env, Value v) {
  env.propose(v);
  const mem::SnapshotHandle s =
      mem::makeSnapshot(env, sim::ObjKey{"x.bug"}, env.nProcs());
  co_await mem::snapshotUpdate(env, s, env.me(), RegVal(v));
  const std::vector<RegVal> view = co_await mem::snapshotScan(env, s);
  const std::vector<Value> u = mem::distinctValues(view);
  env.note(u.size() <= 1 ? "commit" : "adopt", RegVal(v));
  env.decide(v);
  co_return Unit{};
}

std::vector<Value> distinctProps(int n) {
  std::vector<Value> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = 100 + i;
  return v;
}

// Per-process (picked, committed) vector — the schedule-invariant the
// outcome sets are compared on.
using PickVec = std::vector<std::pair<Value, bool>>;

PickVec picksOf(const std::vector<sim::Event>& events, int n) {
  PickVec out(static_cast<std::size_t>(n), {kBottomValue, false});
  for (const auto& e : events) {
    if (e.kind != sim::EventKind::kNote) continue;
    if (e.label != "commit" && e.label != "adopt") continue;
    out[static_cast<std::size_t>(e.pid)] = {e.value.asInt(),
                                            e.label == "commit"};
  }
  return out;
}

std::string convergeViolation(const PickVec& px, int k) {
  bool any_commit = false;
  std::set<Value> vals;
  for (const auto& [v, committed] : px) {
    if (v == kBottomValue) continue;
    vals.insert(v);
    any_commit = any_commit || committed;
  }
  if (any_commit && static_cast<int>(vals.size()) > k) {
    return "commit with " + std::to_string(vals.size()) + " > k = " +
           std::to_string(k) + " distinct picks";
  }
  return "";
}

// ---- Engines -------------------------------------------------------------

struct EngineRow {
  std::uint64_t schedules = 0;
  std::uint64_t sleep_skips = 0;
  std::uint64_t memoized = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t steps_executed = 0;
  std::uint64_t steps_replayed = 0;
  std::uint64_t restores = 0;
  std::uint64_t frontier_jobs = 0;
  long long makespan = 0;
  bool verified = false;
  bool complete = false;
  double seconds = 0;
  std::set<PickVec> outcomes;
};

EngineRow rowOf(const ExploreResult& res, double seconds, int n) {
  EngineRow row;
  row.seconds = seconds;
  row.schedules = res.schedules_explored;
  row.sleep_skips = res.sleep_set_skips;
  row.memoized = res.states_memoized;
  row.memo_hits = res.memo_hits;
  row.steps_executed = res.steps_executed;
  row.steps_replayed = res.steps_replayed;
  row.restores = res.restores;
  row.frontier_jobs = res.frontier_jobs;
  row.makespan = res.stepMakespan();
  row.verified = res.verdict == ExploreVerdict::kVerified;
  row.complete = res.complete;
  for (const auto& [sig, o] : res.outcomes) {
    row.outcomes.insert(picksOf(o.events, n));
  }
  return row;
}

// Brute force: every distinct multiset permutation, one full run each.
EngineRow bruteForce(int n, int k) {
  const std::vector<Value> props = distinctProps(n);
  EngineRow row;
  const WallTimer t;
  std::vector<int> remaining(static_cast<std::size_t>(n), 4);
  std::vector<Pid> seq;
  bool ok = true;
  const std::function<void()> rec = [&] {
    if (static_cast<int>(seq.size()) == n * 4) {
      RunConfig cfg;
      cfg.n_plus_1 = n;
      sim::Run run(cfg, [k](Env& e, Value v) { return oneShot(e, k, v); },
                   props);
      sim::ScriptedPolicy policy(seq,
                                 std::make_unique<sim::RoundRobinPolicy>());
      const Time taken = run.scheduler().run(policy, 10'000);
      row.steps_executed += static_cast<std::uint64_t>(taken);
      const auto rr = run.finish(taken);
      const PickVec px = picksOf(rr.trace().events(), n);
      ok = ok && convergeViolation(px, k).empty();
      row.outcomes.insert(px);
      ++row.schedules;
      return;
    }
    for (Pid p = 0; p < n; ++p) {
      if (remaining[static_cast<std::size_t>(p)] == 0) continue;
      --remaining[static_cast<std::size_t>(p)];
      seq.push_back(p);
      rec();
      seq.pop_back();
      ++remaining[static_cast<std::size_t>(p)];
    }
  };
  rec();
  row.seconds = t.seconds();
  row.verified = ok;
  row.complete = true;
  return row;
}

struct ExplorerOpts {
  int jobs = 0;  // 0 = classic serial engine
  std::uint64_t max_schedules = 1'000'000;
  sim::ResultStore* store = nullptr;
  std::string family;
};

ExploreResult runConverge(int n, int k, ExploreMode mode,
                          const ExplorerOpts& o = {}) {
  ExploreConfig cfg;
  cfg.run.n_plus_1 = n;
  cfg.mode = mode;
  cfg.jobs = o.jobs;
  cfg.max_schedules = o.max_schedules;
  cfg.certificates = o.store;
  cfg.cert_family = o.family;
  cfg.property = [n, k](const ExploreOutcome& out) {
    return convergeViolation(picksOf(out.events, n), k);
  };
  return explore(
      cfg, [k](Env& e, Value v) { return oneShot(e, k, v); },
      distinctProps(n));
}

// Bounded one-round cut of the Fig. 1 protocol (the
// core/upsilon_set_agreement loop body at r = 1 with a single gladiator
// iteration): n-converge, then D, then an Upsilon query splitting
// gladiators from citizens, then the (|U|-1)-sub-convergence — but a
// process that would proceed to round 2 finishes UNDECIDED instead of
// looping. Every decision the cut makes is one the unbounded protocol
// makes at the same point (a conv commit written to D, or a D read), so
// k-set agreement over the deciders is exactly the paper's safety
// property restricted to this prefix — and the workload is finite, which
// is what lets the explorer certify it. The unbounded loop has
// adversarial schedules that never converge, so it has no finite
// schedule space to exhaust.
Coro<Unit> fig1Bounded(Env& env, Value v) {
  env.propose(v);
  const int n = env.nProcs() - 1;
  const sim::ObjId d_reg = env.reg(sim::ObjKey{"fig1.D"});
  const Pick p = co_await kConverge(env, sim::ObjKey{"fig1.conv"}, n, v);
  v = p.value;
  if (p.committed) {
    co_await env.write(d_reg, RegVal(v));
    env.decide(v);
    co_return Unit{};
  }
  {
    const RegVal d = (co_await env.read(d_reg)).scalar;
    if (!d.isBottom()) {
      env.decide(d.asInt());
      co_return Unit{};
    }
  }
  const ProcSet u = (co_await env.queryFd()).scalar.asSet();
  const sim::ObjId dr_reg = env.reg(sim::ObjKey{"fig1.Dr"});
  if (!u.contains(env.me())) {
    env.note("citizen", u);
    co_await env.write(dr_reg, RegVal(v));
    co_return Unit{};
  }
  env.note("gladiator", u);
  const Pick g =
      co_await kConverge(env, sim::ObjKey{"fig1.sub"}, u.size() - 1, v);
  v = g.value;
  if (g.committed) co_await env.write(dr_reg, RegVal(v));
  const RegVal d = (co_await env.read(d_reg)).scalar;
  if (!d.isBottom()) env.decide(d.asInt());
  co_return Unit{};
}

// The Fig. 1 workload at n+1 = 3 with an immediately-stable Upsilon
// history (stabilizationTime 0), so every FD query sits in the
// post-stabilization epoch and the refined relation gets to commute
// them. Property: k-set agreement (k = n - 1 = 2) among the deciders
// plus validity over the proposal set.
ExploreResult runFig1(ExploreMode mode, const ExplorerOpts& o = {}) {
  const int n = 3;
  ExploreConfig cfg;
  cfg.run.n_plus_1 = n;
  cfg.run.fd =
      fd::makeUpsilon(sim::FailurePattern::failureFree(n), /*stab_time=*/0,
                      /*seed=*/7);
  cfg.mode = mode;
  cfg.jobs = o.jobs;
  cfg.max_schedules = o.max_schedules;
  cfg.certificates = o.store;
  cfg.cert_family = o.family;
  cfg.property = [n](const ExploreOutcome& out) {
    std::set<Value> decided;
    for (const auto& [p, v] : out.decisions) {
      if (v < 100 || v >= 100 + n) {
        return std::string("decided a non-proposed value");
      }
      decided.insert(v);
    }
    if (static_cast<int>(decided.size()) > n - 1) {
      return std::to_string(decided.size()) + " distinct decisions > k = " +
             std::to_string(n - 1);
    }
    return std::string();
  };
  return explore(
      cfg, [](Env& e, Value v) { return fig1Bounded(e, v); },
      distinctProps(n));
}

// The jobs=N ≡ jobs=1 contract: every deterministic field must match.
bool bitIdentical(const ExploreResult& a, const ExploreResult& b) {
  return a.verdict == b.verdict && a.violation == b.violation &&
         a.counterexample == b.counterexample &&
         a.schedules_explored == b.schedules_explored &&
         a.sleep_set_skips == b.sleep_set_skips &&
         a.states_memoized == b.states_memoized &&
         a.memo_hits == b.memo_hits &&
         a.steps_executed == b.steps_executed &&
         a.steps_replayed == b.steps_replayed && a.restores == b.restores &&
         a.max_depth_seen == b.max_depth_seen && a.complete == b.complete &&
         a.frontier_jobs == b.frontier_jobs &&
         a.frontier_depth == b.frontier_depth &&
         a.outcomeSigs() == b.outcomeSigs();
}

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  using namespace wfd;
  using namespace wfd::bench;

  const BenchArgs args = BenchArgs::parse(argc, argv);

  banner("schedule-space explorer (sim/explore.h)");
  Table table({"engine", "n+1", "schedules", "sleeps", "memo", "steps",
               "replayed", "jobs", "makespan", "verdict", "seconds"});
  JsonWriter json("bench_explore", args.jobs);
  json.note("mode", args.quick ? "quick" : "full");

  int gates_failed = 0;
  const auto gate = [&](bool ok, const char* what) {
    if (!ok) {
      ++gates_failed;
      std::printf("GATE FAILED: %s\n", what);
    }
  };

  std::map<std::string, EngineRow> rows;
  const auto report = [&](const std::string& name, int n,
                          const EngineRow& row) {
    table.addRow({name, fmt(n), fmt(static_cast<Time>(row.schedules)),
                  fmt(static_cast<Time>(row.sleep_skips)),
                  fmt(static_cast<Time>(row.memoized)),
                  fmt(static_cast<Time>(row.steps_executed)),
                  fmt(static_cast<Time>(row.steps_replayed)),
                  fmt(static_cast<Time>(row.frontier_jobs)),
                  fmt(static_cast<Time>(row.makespan)),
                  row.verified ? (row.complete ? "verified" : "cut")
                               : "VIOLATION",
                  fmt(row.seconds)});
    json.row(name,
             {{"n_plus_1", static_cast<double>(n)},
              {"schedules_explored", static_cast<double>(row.schedules)},
              {"sleep_set_skips", static_cast<double>(row.sleep_skips)},
              {"states_memoized", static_cast<double>(row.memoized)},
              {"memo_hits", static_cast<double>(row.memo_hits)},
              {"steps_executed", static_cast<double>(row.steps_executed)},
              {"steps_replayed", static_cast<double>(row.steps_replayed)},
              {"restores", static_cast<double>(row.restores)},
              {"frontier_jobs", static_cast<double>(row.frontier_jobs)},
              {"step_makespan", static_cast<double>(row.makespan)},
              {"verified", row.verified ? 1.0 : 0.0},
              {"complete", row.complete ? 1.0 : 0.0},
              {"seconds", row.seconds}});
    rows[name] = row;
  };
  const auto timed = [&](const std::string& name, int n,
                         const std::function<ExploreResult()>& fn) {
    const WallTimer t;
    ExploreResult res = fn();
    report(name, n, rowOf(res, t.seconds(), n));
    return res;
  };

  // n = 2: 1-converge, all three engines, outcome sets must agree.
  report("brute-n2", 2, bruteForce(2, 1));
  timed("dpor-n2", 2, [] { return runConverge(2, 1, ExploreMode::kDpor); });
  timed("dag-n2", 2, [] { return runConverge(2, 1, ExploreMode::kDag); });
  gate(rows["brute-n2"].schedules == 70, "brute n=2 enumerates C(8,4) = 70");
  gate(rows["brute-n2"].verified && rows["dpor-n2"].verified &&
           rows["dag-n2"].verified,
       "honest protocol verified at n=2 by every engine");
  gate(rows["dpor-n2"].outcomes == rows["brute-n2"].outcomes,
       "dpor n=2 outcome set equals the brute-force oracle");
  gate(rows["dag-n2"].outcomes == rows["brute-n2"].outcomes,
       "dag n=2 outcome set equals the brute-force oracle");

  // n = 3: 2-converge; brute force only in full mode (34650 runs).
  if (!args.quick) report("brute-n3", 3, bruteForce(3, 2));
  timed("dpor-n3", 3, [] { return runConverge(3, 2, ExploreMode::kDpor); });
  timed("dag-n3", 3, [] { return runConverge(3, 2, ExploreMode::kDag); });
  const double n3_reduction =
      34650.0 / static_cast<double>(rows["dpor-n3"].schedules);
  gate(rows["dpor-n3"].verified && rows["dpor-n3"].complete,
       "dpor n=3 verifies the honest protocol");
  gate(rows["dpor-n3"].schedules * 5 <= 34650,
       "dpor n=3 explores at least 5x fewer schedules than enumeration");
  gate(rows["dpor-n3"].outcomes == rows["dag-n3"].outcomes,
       "dpor and dag agree on the n=3 outcome set");
  if (!args.quick) {
    gate(rows["brute-n3"].outcomes == rows["dpor-n3"].outcomes,
         "dpor n=3 outcome set equals the brute-force oracle");
  }

  // ---- Parallel frontier: jobs=4 ≡ jobs=1 plus the makespan gate ----------
  {
    ExplorerOpts j1;
    j1.jobs = 1;
    ExplorerOpts j4;
    j4.jobs = 4;
    const ExploreResult dpor_f1 =
        timed("dpor-n3-f1", 3,
              [&] { return runConverge(3, 2, ExploreMode::kDpor, j1); });
    const ExploreResult dpor_f4 =
        timed("dpor-n3-f4", 3,
              [&] { return runConverge(3, 2, ExploreMode::kDpor, j4); });
    const ExploreResult dag_f1 =
        timed("dag-n3-f1", 3,
              [&] { return runConverge(3, 2, ExploreMode::kDag, j1); });
    const ExploreResult dag_f4 =
        timed("dag-n3-f4", 3,
              [&] { return runConverge(3, 2, ExploreMode::kDag, j4); });
    gate(bitIdentical(dpor_f1, dpor_f4),
         "dpor n=3 frontier jobs=4 is bit-identical to jobs=1");
    gate(bitIdentical(dag_f1, dag_f4),
         "dag n=3 frontier jobs=4 is bit-identical to jobs=1");
    gate(dpor_f4.verified() &&
             dpor_f4.outcomeSigs() == dag_f4.outcomeSigs(),
         "frontier dpor n=3 verifies and matches the frontier dag outcomes");
    // Frontier-vs-classic: eager prefixes explore more representatives,
    // so counts differ by design — the verdict and outcome SET must not.
    std::set<PickVec> f4_outcomes;
    for (const auto& [sig, o] : dpor_f4.outcomes) {
      f4_outcomes.insert(picksOf(o.events, 3));
    }
    gate(f4_outcomes == rows["dpor-n3"].outcomes,
         "frontier dpor n=3 outcome set equals the classic engine's");
    const double mk1 = static_cast<double>(dpor_f1.stepMakespan());
    const double mk4 = static_cast<double>(dpor_f4.stepMakespan());
    const double ratio = mk4 > 0 ? mk1 / mk4 : 0.0;
    std::printf("frontier n=3 dpor: %llu jobs at depth %d, makespan %lld -> "
                "%lld steps (%.2fx, utilization %.2f)\n",
                static_cast<unsigned long long>(dpor_f4.frontier_jobs),
                dpor_f4.frontier_depth, dpor_f1.stepMakespan(),
                dpor_f4.stepMakespan(), ratio, dpor_f4.stepUtilization());
    gate(ratio >= 3.0,
         "frontier n=3 shows >= 3x step-makespan reduction at jobs=4");
    json.metric("frontier_n3_makespan_ratio", ratio);
    json.metric("frontier_n3_jobs",
                static_cast<double>(dpor_f4.frontier_jobs));
    json.metric("frontier_n3_utilization", dpor_f4.stepUtilization());
  }

  // ---- Fig. 1 (n+1 = 3): first DPOR certificate under the refined
  // FD-independence relation, cross-checked against the kDag oracle.
  {
    const ExploreResult fig1_dpor =
        timed("fig1-dpor", 3, [] { return runFig1(ExploreMode::kDpor); });
    const ExploreResult fig1_dag =
        timed("fig1-dag", 3, [] { return runFig1(ExploreMode::kDag); });
    gate(fig1_dpor.verified(),
         "fig1 n+1=3 certified by dpor under the refined FD relation");
    gate(fig1_dag.verified(), "fig1 n+1=3 certified by the dag oracle");
    gate(fig1_dpor.outcomeSigs() == fig1_dag.outcomeSigs(),
         "fig1 dpor outcome set equals the dag oracle's");
    json.metric("fig1_dpor_schedules",
                static_cast<double>(fig1_dpor.schedules_explored));
    json.metric("fig1_dag_schedules",
                static_cast<double>(fig1_dag.schedules_explored));
  }

  // ---- Persistent exploration certificates --------------------------------
  // Skipped under the WFD_AUDIT latch: audited runs are uncacheable BY
  // DESIGN (an audited run exists to be re-executed and checked, never to
  // be answered from a store), so there is nothing to gate — the same
  // degradation bench_fabric applies to its memo phases.
  if (sim::resolvedAuditMode(std::nullopt).has_value()) {
    std::printf("note: WFD_AUDIT latch active — certificate phases "
                "skipped (audited runs bypass the store by design)\n");
  } else {
    namespace fs = std::filesystem;
    const std::string dir =
        args.cache_dir.empty() ? "bench_explore.store" : args.cache_dir;
    if (!args.keep_cache) {
      std::error_code ec;
      fs::remove_all(dir, ec);
    }
    ExplorerOpts certd;
    certd.jobs = 2;
    certd.family = "bench_explore.converge.n3k2";
    sim::fabric::PersistentStore store({dir, "explore-bench-A"});
    certd.store = &store;
    const WallTimer t_cold;
    const ExploreResult cold = runConverge(3, 2, ExploreMode::kDpor, certd);
    const double cold_s = t_cold.seconds();
    const WallTimer t_warm;
    const ExploreResult warm = runConverge(3, 2, ExploreMode::kDpor, certd);
    const double warm_s = t_warm.seconds();
    gate(!cold.from_cache && cold.cert_saves > 0,
         "certificate cold run searches and saves");
    gate(warm.from_cache, "certificate warm re-run skips the search");
    gate(warm.verdict == cold.verdict &&
             warm.schedules_explored == cold.schedules_explored &&
             warm.outcomeSigs() == cold.outcomeSigs(),
         "certificate warm result matches the cold run");
    // Version mismatch: a different store version addresses a different
    // segment file, so the lookup must COLD-MISS, never wrong-hit.
    sim::fabric::PersistentStore store_b({dir, "explore-bench-B"});
    certd.store = &store_b;
    const ExploreResult mismatch =
        runConverge(3, 2, ExploreMode::kDpor, certd);
    gate(!mismatch.from_cache,
         "certificate version mismatch cold-misses (never wrong-hits)");
    // Resume: a budget-cut frontier saves per-job certificates, so the
    // identical re-run answers finished jobs from the store.
    ExplorerOpts cut = certd;
    cut.store = &store;
    cut.max_schedules = 5;  // below any n=3 job subtree: forces the cut
    cut.family = "bench_explore.converge.n3k2.cut";
    const ExploreResult cut_a = runConverge(3, 2, ExploreMode::kDag, cut);
    const ExploreResult cut_b = runConverge(3, 2, ExploreMode::kDag, cut);
    gate(!cut_a.complete && cut_a.cert_saves > 0,
         "budget-cut frontier run saves per-job certificates");
    gate(cut_b.cert_job_hits > 0 &&
             cut_b.schedules_explored == cut_a.schedules_explored &&
             cut_b.outcomeSigs() == cut_a.outcomeSigs(),
         "interrupted frontier resumes from per-job certificates");
    std::printf("certificates: cold %.3fs -> warm %.3fs (saves %llu, "
                "resume hits %llu)\n",
                cold_s, warm_s,
                static_cast<unsigned long long>(cold.cert_saves),
                static_cast<unsigned long long>(cut_b.cert_job_hits));
    json.metric("cert_cold_seconds", cold_s);
    json.metric("cert_warm_seconds", warm_s);
    json.metric("cert_warm_hit", warm.from_cache ? 1.0 : 0.0);
    json.metric("cert_resume_job_hits",
                static_cast<double>(cut_b.cert_job_hits));
    if (!args.keep_cache && args.cache_dir.empty()) {
      std::error_code ec;
      fs::remove_all(dir, ec);
    }
  }

  // n = 4: frontier campaign, full mode only; the permutation count is
  // 6.3e7. The frontier pushes past the old 200k serial budget.
  if (!args.quick) {
    ExplorerOpts o4;
    o4.jobs = args.jobs > 0 ? args.jobs : 4;
    o4.max_schedules = 1'000'000;
    const ExploreResult n4 = timed("dpor-n4-frontier", 4, [&] {
      return runConverge(4, 3, ExploreMode::kDpor, o4);
    });
    gate(n4.verdict == ExploreVerdict::kVerified,
         "dpor n=4 frontier finds no violation");
    gate(n4.complete || n4.schedules_explored > 200'000,
         "dpor n=4 frontier pushes past the 200k serial budget");
    json.metric("n4_schedules",
                static_cast<double>(n4.schedules_explored));
    json.metric("n4_complete", n4.complete ? 1.0 : 0.0);
  }

  // The seeded bug: the explorer must catch it with a counterexample —
  // and the frontier engine must catch the SAME one at any worker count.
  {
    ExploreConfig cfg;
    cfg.run.n_plus_1 = 2;
    cfg.mode = ExploreMode::kDpor;
    cfg.property = [](const ExploreOutcome& o) {
      return convergeViolation(picksOf(o.events, 2), 1);
    };
    const WallTimer t;
    const ExploreResult res =
        explore(cfg, [](Env& e, Value v) { return buggyOneShot(e, v); },
                {100, 101});
    const bool caught = res.verdict == ExploreVerdict::kViolation &&
                        !res.counterexample.empty();
    gate(caught, "seeded agreement bug caught with a counterexample");
    if (caught) {
      std::printf("seeded bug caught: %s [schedule: %s]\n",
                  res.violation.c_str(), res.counterexampleString().c_str());
    }
    ExploreConfig fcfg = cfg;
    fcfg.jobs = 1;
    const ExploreResult f1 =
        explore(fcfg, [](Env& e, Value v) { return buggyOneShot(e, v); },
                {100, 101});
    fcfg.jobs = 4;
    const ExploreResult f4 =
        explore(fcfg, [](Env& e, Value v) { return buggyOneShot(e, v); },
                {100, 101});
    gate(f1.verdict == ExploreVerdict::kViolation &&
             f1.counterexample == f4.counterexample &&
             bitIdentical(f1, f4),
         "frontier catches the seeded bug identically at jobs=1 and jobs=4");
    json.row("bug-hunt-n2",
             {{"schedules_explored",
               static_cast<double>(res.schedules_explored)},
              {"caught", caught ? 1.0 : 0.0},
              {"counterexample_len",
               static_cast<double>(res.counterexample.size())},
              {"seconds", t.seconds()}});
  }

  table.print();
  std::printf("headline: dpor n=3 %llu schedules vs 34650 enumerated "
              "(%.1fx reduction), gates %s\n",
              static_cast<unsigned long long>(rows["dpor-n3"].schedules),
              n3_reduction, gates_failed == 0 ? "PASS" : "FAIL");

  json.metric("dpor_n3_schedules",
              static_cast<double>(rows["dpor-n3"].schedules));
  json.metric("dpor_n3_reduction_factor", n3_reduction);
  // Throughput metric for the committed-baseline gate: bench_compare.py
  // fails on a > 20% rate drop, so de-noise with best-of-3 repetitions of
  // the ~20 ms n = 3 dpor search (minimum wall time = least interference).
  double n3_best_seconds = rows["dpor-n3"].seconds;
  for (int rep = 0; rep < 3; ++rep) {
    const WallTimer t;
    (void)runConverge(3, 2, ExploreMode::kDpor);
    n3_best_seconds = std::min(n3_best_seconds, t.seconds());
  }
  json.metric("dpor_n3_sched_per_sec",
              n3_best_seconds > 0
                  ? static_cast<double>(rows["dpor-n3"].schedules) /
                        n3_best_seconds
                  : 0.0);
  json.metric("gates_failed", gates_failed);
  if (!args.json_path.empty() && !json.write(args.json_path)) return 1;
  return gates_failed == 0 ? 0 : 1;
}
