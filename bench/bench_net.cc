// E19: the message-passing substrate and its realized detectors.
//
// Four sections over src/sim/net/ (docs/NET.md):
//   * substrate:  a (gst, delta, faults) x seed grid of heartbeat
//     executions, each simulated twice. Certifies seed determinism (the
//     two trace hashes are bit-identical) and the partial-synchrony
//     envelope (no message sent at or after GST lags more than delta —
//     graceful degradation however hostile the pre-GST fault draw).
//   * certify:    the realized-history campaign. Every (lens x pattern x
//     fault config x seed) cell drives an audited watched run whose
//     detector is a heartbeat-REALIZED <>P / Omega / Upsilon history cut
//     from one shared simulation (FdCache); Upsilon and Omega cells
//     additionally compose link faults with chaos crash injection
//     (protecting the realized leader — the legality table of
//     docs/NET.md; <>P cells take in-pattern crashes only, since any
//     injected crash falsifies its stable value by definition). Full
//     depth runs >= 1,080 cells; certification is ZERO axiom violations.
//   * negative:   per-family illegal glitches wrapped around realized
//     detectors, driven through an FD sampler. 100% detection required.
//   * figures:    Fig. 1 (n-set agreement from Upsilon) and Fig. 2
//     (f-resilient from Upsilon^f) run against realized detectors with a
//     small GST — the paper's algorithms on heartbeat histories instead
//     of scripted ones — plus bit-identical same-seed replay.
//
// `--json out.json` records runs, failures, wall time and steps/s per
// section (CI archives BENCH_net.json per push). --quick is the CI
// smoke; full depth is the nightly soak quoted in EXPERIMENTS.md E19.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace wfd;
using sim::BatchCell;
using sim::CellResult;
using sim::ChaosConfig;
using sim::CrashInjection;
using sim::Env;
using sim::FailurePattern;
using sim::FdCache;
using sim::GlitchKind;
using sim::RunConfig;
using sim::RunVerdict;
using sim::WatchdogConfig;
using sim::net::NetConfig;
using sim::net::RealizedFd;
using sim::net::RealizedLens;

int g_failures = 0;

void require(bool ok, const char* what) {
  if (!ok) {
    std::printf("FAIL: %s\n", what);
    ++g_failures;
  }
}

// ---- shared fixtures -----------------------------------------------------

struct FaultGrid {
  const char* name;
  sim::net::LinkFaults faults;
};

const FaultGrid kFaultGrid[] = {
    {"mild", {1, 8, 50, 0, 32}},
    {"harsh", {1, 16, 250, 1, 48}},
    {"partitioned", {2, 24, 100, 2, 64}},
};

NetConfig netCfg(const FaultGrid& g, Time gst, Time delta, std::uint64_t seed) {
  NetConfig cfg;
  cfg.env = {gst, delta};
  cfg.faults = g.faults;
  cfg.seed = seed;
  return cfg;
}

std::vector<FailurePattern> patterns() {
  return {FailurePattern::failureFree(4),
          FailurePattern::withCrashes(4, {{3, 40}}),
          FailurePattern::withCrashes(5, {{0, 10}, {4, 90}})};
}

sim::AlgoFn fdSampler(int queries) {
  return [queries](Env& e, Value) -> sim::Coro<sim::Unit> {
    for (int i = 0; i < queries; ++i) (void)co_await e.queryFd();
    e.decide(0);
    co_return sim::Unit{};
  };
}

sim::AlgoFn fig1Algo() {
  return [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); };
}

std::vector<Value> distinctProposals(int n_plus_1) {
  std::vector<Value> v(static_cast<std::size_t>(n_plus_1));
  for (int i = 0; i < n_plus_1; ++i) v[static_cast<std::size_t>(i)] = 100 + i;
  return v;
}

struct SectionStats {
  int runs = 0;
  int failures = 0;
  long long steps = 0;
  double wall_s = 0;
};

// ---- section A: substrate determinism + envelope grid --------------------

SectionStats substrateGrid(int seeds_per_cell) {
  const bench::WallTimer wall;
  SectionStats s;
  const Time gsts[] = {0, 64, 256};
  const Time deltas[] = {2, 4};
  for (const FaultGrid& g : kFaultGrid) {
    for (const Time gst : gsts) {
      for (const Time delta : deltas) {
        for (int i = 0; i < seeds_per_cell; ++i) {
          const std::uint64_t seed = 1 + static_cast<std::uint64_t>(i);
          const auto fp = FailurePattern::withCrashes(4, {{3, 40}});
          const NetConfig cfg = netCfg(g, gst, delta, seed);
          const auto a = sim::net::simulateHeartbeats(fp, cfg);
          const auto b = sim::net::simulateHeartbeats(fp, cfg);
          ++s.runs;
          if (a->counters.trace_hash != b->counters.trace_hash) {
            ++s.failures;
            std::printf("FAIL: %s gst=%lld delta=%lld seed=%llu diverged\n",
                        g.name, static_cast<long long>(gst),
                        static_cast<long long>(delta),
                        static_cast<unsigned long long>(seed));
          }
          if (a->counters.max_post_gst_lag > delta) {
            ++s.failures;
            std::printf("FAIL: %s gst=%lld envelope broken: lag %lld > %lld\n",
                        g.name, static_cast<long long>(gst),
                        static_cast<long long>(a->counters.max_post_gst_lag),
                        static_cast<long long>(delta));
          }
        }
      }
    }
  }
  s.wall_s = wall.seconds();
  return s;
}

// ---- section B: the realized-history certification campaign --------------

SectionStats certifyCampaign(int seeds_per_cell, const sim::BatchOptions& opts,
                             FdCache& cache,
                             sim::BatchStats* batch_stats = nullptr) {
  const bench::WallTimer wall;
  const auto pats = patterns();
  struct LensRow {
    RealizedLens lens;
    const char* name;
  };
  const LensRow lenses[] = {
      {RealizedLens::kEventuallyPerfect, "net<>P"},
      {RealizedLens::kOmega, "netOmega"},
      {RealizedLens::kUpsilon, "netUpsilon"},
  };
  std::vector<BatchCell> cells;
  for (const LensRow& lr : lenses) {
    for (std::size_t pi = 0; pi < pats.size(); ++pi) {
      for (std::size_t gi = 0; gi < std::size(kFaultGrid); ++gi) {
        for (int si = 0; si < seeds_per_cell; ++si) {
          const FailurePattern& fp = pats[pi];
          const std::uint64_t seed =
              1 + static_cast<std::uint64_t>(si) + 100 * (pi + 10 * gi);
          const NetConfig ncfg = netCfg(kFaultGrid[gi], /*gst=*/96,
                                        /*delta=*/4, seed);
          const int n_plus_1 = fp.nProcs();
          BatchCell cell;
          cell.cfg.n_plus_1 = n_plus_1;
          cell.cfg.fp = fp;
          cell.cfg.seed = seed * 31 + gi;
          ChaosConfig chaos;
          chaos.seed = seed;
          if (lr.lens == RealizedLens::kUpsilon) {
            cell.cfg.fd = cache.netUpsilonF(fp, n_plus_1 - 1, ncfg);
            cell.algo = fig1Algo();
          } else if (lr.lens == RealizedLens::kOmega) {
            cell.cfg.fd = cache.netOmega(fp, ncfg);
            cell.algo = fdSampler(60);
          } else {
            cell.cfg.fd = cache.netEventuallyPerfect(fp, ncfg);
            cell.algo = fdSampler(60);
          }
          if (lr.lens != RealizedLens::kEventuallyPerfect) {
            // Compose link faults with crash injection. The realized
            // stable value excludes the original pattern's min correct
            // process; protecting it keeps the history in D(F').
            const Pid leader = fp.correct().members().front();
            chaos.max_faulty = fp.faulty().size() + 1;
            chaos.protected_pids = ProcSet{leader};
            chaos.crashes.push_back({CrashInjection::Strategy::kRandom,
                                     /*victim=*/-1, /*at=*/0, /*horizon=*/500,
                                     /*count=*/1, /*seed=*/seed * 17});
          }
          cell.chaos = chaos;
          cell.watchdog =
              WatchdogConfig{3'000'000, 0,
                             lr.lens == RealizedLens::kUpsilon ? n_plus_1 - 1 : 0};
          cell.proposals = distinctProposals(n_plus_1);
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  const auto results = driveWatchedBatch(cells, opts, batch_stats);
  SectionStats s;
  s.runs = static_cast<int>(results.size());
  for (const CellResult& r : results) {
    s.steps += r.steps;
    if (!r.ok()) {
      ++s.failures;
      std::printf("FAIL: certify cell %zu: %s\n", r.index, r.detail.c_str());
    }
  }
  s.wall_s = wall.seconds();
  return s;
}

// ---- section C: per-family negative controls -----------------------------

SectionStats negativeControls(int seeds_per_control,
                              const sim::BatchOptions& opts, FdCache& cache) {
  const bench::WallTimer wall;
  struct Control {
    RealizedLens lens;
    GlitchKind kind;
  };
  const Control controls[] = {
      {RealizedLens::kEventuallyPerfect, GlitchKind::kEmptyAnswer},
      {RealizedLens::kEventuallyPerfect, GlitchKind::kPostStabFlap},
      {RealizedLens::kOmega, GlitchKind::kEmptyAnswer},
      {RealizedLens::kOmega, GlitchKind::kStabExcludeCorrect},
      {RealizedLens::kUpsilon, GlitchKind::kUndersizedAnswer},
      {RealizedLens::kUpsilon, GlitchKind::kStabToCorrect},
  };
  const auto fp = FailurePattern::withCrashes(4, {{3, 30}});
  std::vector<BatchCell> cells;
  for (const Control& c : controls) {
    for (int si = 0; si < seeds_per_control; ++si) {
      const std::uint64_t seed = 1 + static_cast<std::uint64_t>(si);
      const NetConfig ncfg = netCfg(kFaultGrid[1], 64, 4, seed);
      const auto h = cache.netHistory(fp, ncfg);
      BatchCell cell;
      cell.cfg.n_plus_1 = fp.nProcs();
      cell.cfg.fp = fp;
      cell.cfg.fd = std::make_shared<const RealizedFd>(h, c.lens, /*f=*/2);
      cell.cfg.seed = seed;
      ChaosConfig chaos;
      chaos.glitch = {c.kind, 0, seed};
      cell.chaos = chaos;
      cell.watchdog = WatchdogConfig{500'000, 0, 0};
      cell.algo = fdSampler(120);
      cell.proposals = distinctProposals(fp.nProcs());
      cells.push_back(std::move(cell));
    }
  }
  const auto results = driveWatchedBatch(cells, opts);
  SectionStats s;
  s.runs = static_cast<int>(results.size());
  for (const CellResult& r : results) {
    s.steps += r.steps;
    if (r.error || r.verdict != RunVerdict::kAxiomViolation) {
      ++s.failures;
      std::printf("FAIL: negative control %zu escaped: %s %s\n", r.index,
                  sim::runVerdictName(r.verdict), r.detail.c_str());
    }
  }
  s.wall_s = wall.seconds();
  return s;
}

// ---- section D: the paper's figures on realized detectors ----------------

SectionStats figuresOnRealized(int seeds, FdCache& cache) {
  const bench::WallTimer wall;
  SectionStats s;
  for (int si = 0; si < seeds; ++si) {
    const std::uint64_t seed = 1 + static_cast<std::uint64_t>(si);
    // Fig. 1: n-set agreement from realized Upsilon, small GST.
    {
      const int n_plus_1 = 4;
      const auto fp = FailurePattern::withCrashes(n_plus_1, {{3, 40}});
      const NetConfig ncfg = netCfg(kFaultGrid[si % 3], /*gst=*/64, 4, seed);
      RunConfig cfg;
      cfg.n_plus_1 = n_plus_1;
      cfg.fp = fp;
      cfg.fd = cache.netUpsilonF(fp, n_plus_1 - 1, ncfg);
      cfg.seed = seed;
      cfg.audit = sim::AuditMode::kThrow;
      const auto props = distinctProposals(n_plus_1);
      const auto a = runTask(cfg, fig1Algo(), props);
      const auto b = runTask(cfg, fig1Algo(), props);  // same-seed replay
      ++s.runs;
      s.steps += a.steps + b.steps;
      require(a.all_correct_done, "fig1/realized: correct processes done");
      require(core::checkKSetAgreement(a, n_plus_1 - 1, props).ok(),
              "fig1/realized: k-set agreement");
      require(a.trace().hash64() == b.trace().hash64(),
              "fig1/realized: bit-identical same-seed replay");
      if (!a.all_correct_done ||
          a.trace().hash64() != b.trace().hash64()) {
        ++s.failures;
      }
    }
    // Fig. 2: f-resilient f-set agreement from realized Upsilon^f.
    {
      const int n_plus_1 = 4;
      const int f = 2;
      const auto fp = FailurePattern::withCrashes(n_plus_1, {{0, 30}});
      const NetConfig ncfg = netCfg(kFaultGrid[(si + 1) % 3], /*gst=*/128, 4,
                                    seed * 7);
      RunConfig cfg;
      cfg.n_plus_1 = n_plus_1;
      cfg.fp = fp;
      cfg.fd = cache.netUpsilonF(fp, f, ncfg);
      cfg.seed = seed;
      cfg.audit = sim::AuditMode::kThrow;
      const auto props = distinctProposals(n_plus_1);
      const auto algo = [f](Env& e, Value v) {
        return core::upsilonFSetAgreement(e, f, v);
      };
      const auto a = runTask(cfg, algo, props);
      const auto b = runTask(cfg, algo, props);
      ++s.runs;
      s.steps += a.steps + b.steps;
      require(a.all_correct_done, "fig2/realized: correct processes done");
      require(core::checkKSetAgreement(a, f, props).ok(),
              "fig2/realized: f-set agreement");
      require(a.trace().hash64() == b.trace().hash64(),
              "fig2/realized: bit-identical same-seed replay");
      if (!a.all_correct_done ||
          a.trace().hash64() != b.trace().hash64()) {
        ++s.failures;
      }
    }
  }
  s.wall_s = wall.seconds();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const bool quick = args.quick;
  const sim::BatchOptions opts = args.batchOptions();
  const int jobs = sim::resolveJobs(args.jobs);
  // Full depth: 1,080 certification runs (3 lenses x 3 patterns x 3 fault
  // configs x 40 seeds) + 360 substrate pairs + 120 negative controls +
  // 50 figure pairs — the numbers EXPERIMENTS.md row E19 quotes.
  const int grid_seeds = quick ? 3 : 20;
  const int certify_seeds = quick ? 4 : 40;
  const int neg_seeds = quick ? 4 : 20;
  const int fig_seeds = quick ? 4 : 25;

  std::printf("\n=== net substrate + realized detectors (%s, jobs=%d) ===\n",
              quick ? "--quick" : "full depth", jobs);
  const bench::WallTimer wall;
  FdCache cache;
  const SectionStats sub = substrateGrid(grid_seeds);
  sim::BatchStats cert_batch;
  const SectionStats cert =
      certifyCampaign(certify_seeds, opts, cache, &cert_batch);
  const SectionStats neg = negativeControls(neg_seeds, opts, cache);
  const SectionStats fig = figuresOnRealized(fig_seeds, cache);
  const double wall_s = wall.seconds();

  bench::Table t({"section", "runs", "failures", "wall s", "certified"});
  t.addRow({"substrate grid (determinism+envelope)", bench::fmt(sub.runs),
            bench::fmt(sub.failures), bench::fmt(sub.wall_s),
            bench::passFail(sub.failures == 0)});
  t.addRow({"certify (audited realized histories)", bench::fmt(cert.runs),
            bench::fmt(cert.failures), bench::fmt(cert.wall_s),
            bench::passFail(cert.failures == 0)});
  t.addRow({"negative controls (100% detection)", bench::fmt(neg.runs),
            bench::fmt(neg.failures), bench::fmt(neg.wall_s),
            bench::passFail(neg.failures == 0)});
  t.addRow({"fig1/fig2 on realized + replay", bench::fmt(fig.runs),
            bench::fmt(fig.failures), bench::fmt(fig.wall_s),
            bench::passFail(fig.failures == 0)});
  t.print();
  std::printf("histories simulated: %zu (cache hits %zu)\n", cache.size(),
              cache.hits());

  g_failures += sub.failures + cert.failures + neg.failures;

  if (!args.json_path.empty()) {
    bench::JsonWriter json("bench_net", jobs);
    json.note("mode", quick ? "quick" : "full");
    json.metric("wall_s", wall_s);
    const auto section = [&json](const char* name, const SectionStats& s) {
      json.row(name, {{"runs", static_cast<double>(s.runs)},
                      {"failures", static_cast<double>(s.failures)},
                      {"steps", static_cast<double>(s.steps)},
                      {"wall_s", s.wall_s},
                      {"steps_per_s",
                       s.wall_s > 0 ? static_cast<double>(s.steps) / s.wall_s
                                    : 0}});
    };
    section("substrate_grid", sub);
    section("certify", cert);
    section("negative_controls", neg);
    section("figures_realized", fig);
    json.metric("fd_cache_histories", static_cast<double>(cache.size()));
    json.metric("fd_cache_hits", static_cast<double>(cache.hits()));
    bench::emitBatchStats(json, "certify_batch", cert_batch);
    if (!json.write(args.json_path)) ++g_failures;
  }

  if (g_failures != 0) {
    std::printf("\nbench_net: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("\nbench_net: all sections certified\n");
  return 0;
}
