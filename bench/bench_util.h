// Shared helpers for the experiment harnesses: aligned table output,
// small statistics, common command-line flags (--quick / --jobs / --json)
// and a machine-readable JSON results writer. Each bench binary prints
// the rows recorded in EXPERIMENTS.md; where wall-clock timing is the
// point (substrate costs) google-benchmark is used instead.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "wfd.h"

namespace wfd::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void addRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> w(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < w.size(); ++c) {
        w[c] = std::max(w[c], r[c].size());
      }
    }
    auto line = [&] {
      std::string s = "+";
      for (std::size_t c = 0; c < w.size(); ++c) {
        s += std::string(w[c] + 2, '-') + "+";
      }
      std::puts(s.c_str());
    };
    auto row = [&](const std::vector<std::string>& r) {
      std::string s = "|";
      for (std::size_t c = 0; c < w.size(); ++c) {
        const std::string& cell = c < r.size() ? r[c] : "";
        s += " " + cell + std::string(w[c] - cell.size(), ' ') + " |";
      }
      std::puts(s.c_str());
    };
    line();
    row(headers_);
    line();
    for (const auto& r : rows_) row(r);
    line();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline Time median(std::vector<Time> xs) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

inline std::string fmt(Time t) { return std::to_string(t); }
inline std::string fmt(int v) { return std::to_string(v); }
inline std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}
inline std::string passFail(bool ok) { return ok ? "PASS" : "FAIL"; }

inline void banner(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

// Configure-time build provenance, injected by bench/CMakeLists.txt so
// every BENCH_*.json records which binary produced it. CI reconfigures
// per checkout, so the SHA is exact there; for local incremental builds
// the WFD_GIT_SHA environment variable overrides the baked-in value.
#ifndef WFD_GIT_SHA
#define WFD_GIT_SHA "unknown"
#endif
#ifndef WFD_CXX_FLAGS
#define WFD_CXX_FLAGS "unknown"
#endif

// ---- Common harness flags ------------------------------------------------
//
//   --quick        shrink campaigns to the CI smoke size
//   --jobs N       batch-runner worker threads (default: all hardware)
//   --steal /      work-stealing scheduler on (default) or static
//   --no-steal     contiguous-block sharding (the speedup baseline)
//   --memo /       whole-run ReportCache on or off. Default OFF: the
//   --no-memo      chaos replay-determinism certification re-runs
//                  identical seeds on purpose, and a memo would answer
//                  the second run from the first.
//   --procs N      fabric worker PROCESSES (default 1 = in-process).
//                  Consumed by harnesses that route through runFabric.
//   --cache-dir D  back the memo with the persistent store in D
//                  (sim/fabric/store.h); implies memoization for the
//                  harnesses that honor it
//   --cache-cap N  ReportCache capacity (0 = kDefaultCapacity)
//   --keep-cache   do NOT wipe the cache dir first: the run must warm
//                  from a PREVIOUS process's store (the CI restart gate)
//   --json PATH    write machine-readable results (JsonWriter) to PATH
struct BenchArgs {
  bool quick = false;
  int jobs = 0;  // 0 = hardware_concurrency (sim::resolveJobs)
  bool steal = true;
  bool memo = false;
  int procs = 1;
  std::string cache_dir;
  std::size_t cache_cap = 0;
  bool keep_cache = false;
  std::string json_path;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        a.quick = true;
      } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
        a.jobs = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--steal") == 0) {
        a.steal = true;
      } else if (std::strcmp(argv[i], "--no-steal") == 0) {
        a.steal = false;
      } else if (std::strcmp(argv[i], "--memo") == 0) {
        a.memo = true;
      } else if (std::strcmp(argv[i], "--no-memo") == 0) {
        a.memo = false;
      } else if (std::strcmp(argv[i], "--procs") == 0 && i + 1 < argc) {
        a.procs = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--cache-dir") == 0 && i + 1 < argc) {
        a.cache_dir = argv[++i];
      } else if (std::strcmp(argv[i], "--cache-cap") == 0 && i + 1 < argc) {
        a.cache_cap = static_cast<std::size_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--keep-cache") == 0) {
        a.keep_cache = true;
      } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        a.json_path = argv[++i];
      }
    }
    return a;
  }

  // BatchOptions for these flags; `cache` is attached only under --memo
  // (pass the harness's ReportCache so hit-rate stats survive batches).
  // cache_dir/cache_cap flow through for makeMemo/runFabric consumers;
  // the persistent store is stamped with the binary's git SHA so a
  // rebuilt binary never replays a stale schema.
  [[nodiscard]] sim::BatchOptions batchOptions(
      sim::ReportCache* cache = nullptr) const {
    sim::BatchOptions o;
    o.jobs = jobs;
    o.steal = steal;
    o.memo = memo ? cache : nullptr;
    o.memo_capacity = cache_cap;
    o.cache_dir = cache_dir;
    o.cache_version = gitSha();
    return o;
  }

  // The same provenance stamp JsonWriter records, used as the persistent
  // store's invalidation version.
  [[nodiscard]] static std::string gitSha() {
    const char* sha = std::getenv("WFD_GIT_SHA");
    return sha != nullptr && *sha != '\0' ? sha : WFD_GIT_SHA;
  }
};

// Wall-clock stopwatch for throughput reporting. The simulation itself
// never reads ambient time (model_lint enforces that); measuring how fast
// the harness chews through cells is exactly the sanctioned exception.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}  // model-lint-allow: wall-clock throughput measurement

  [[nodiscard]] double seconds() const {
    const auto now = std::chrono::steady_clock::now();  // model-lint-allow: wall-clock throughput measurement
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Machine-readable bench results: one JSON document per harness run with
// top-level metadata, global metrics, and named per-row metric objects.
// Written by `--json out.json`; CI archives BENCH_chaos.json and
// BENCH_core.json per push so the perf trajectory (steps/s, wall time,
// jobs) is recorded and attributable across PRs (docs/PERF.md).
class JsonWriter {
 public:
  JsonWriter(std::string bench_name, int jobs)
      : bench_(std::move(bench_name)), jobs_(jobs) {
    const char* sha = std::getenv("WFD_GIT_SHA");
    note("git_sha", sha != nullptr && *sha != '\0' ? sha : WFD_GIT_SHA);
    note("compiler", __VERSION__);
    note("cxx_flags", WFD_CXX_FLAGS);
    metric("hardware_concurrency",
           static_cast<double>(std::thread::hardware_concurrency()));
  }

  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }
  void note(const std::string& key, std::string value) {
    notes_.emplace_back(key, std::move(value));
  }
  void row(const std::string& name,
           std::vector<std::pair<std::string, double>> fields) {
    rows_.emplace_back(name, std::move(fields));
  }

  // Returns false (and says so on stderr) if PATH is unwritable.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"jobs\": %d",
                 escape(bench_).c_str(), jobs_);
    for (const auto& [k, v] : notes_) {
      std::fprintf(f, ",\n  \"%s\": \"%s\"", escape(k).c_str(),
                   escape(v).c_str());
    }
    for (const auto& [k, v] : metrics_) {
      std::fprintf(f, ",\n  \"%s\": %s", escape(k).c_str(), num(v).c_str());
    }
    std::fprintf(f, ",\n  \"rows\": [");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const auto& [name, fields] = rows_[i];
      std::fprintf(f, "%s\n    { \"name\": \"%s\"", i == 0 ? "" : ",",
                   escape(name).c_str());
      for (const auto& [k, v] : fields) {
        std::fprintf(f, ", \"%s\": %s", escape(k).c_str(), num(v).c_str());
      }
      std::fprintf(f, " }");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    return out;
  }
  // Integral values print without a fraction so counters stay counters.
  static std::string num(double v) {
    char buf[40];
    if (v == static_cast<double>(static_cast<long long>(v))) {
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    } else {
      std::snprintf(buf, sizeof buf, "%.6g", v);
    }
    return buf;
  }

  std::string bench_;
  int jobs_;
  std::vector<std::pair<std::string, std::string>> notes_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::string, double>>>> rows_;
};

// Surface one batch execution's scheduler/memo/fabric counters in a
// bench's JSON output, prefixed so a harness can report several batches
// (docs/PERF.md reads these fields across every BENCH_*.json). Metrics
// cover the aggregate counters; per-worker load lands as one row per
// worker slot (a worker PROCESS when stats came from runFabric).
inline void emitBatchStats(JsonWriter& json, const std::string& prefix,
                           const sim::BatchStats& stats) {
  const auto n = [](auto v) { return static_cast<double>(v); };
  json.metric(prefix + "_cells", n(stats.cells));
  json.metric(prefix + "_procs", n(stats.procs));
  json.metric(prefix + "_steal_ops", n(stats.steal_ops));
  json.metric(prefix + "_stolen_cells", n(stats.stolen_cells));
  json.metric(prefix + "_memo_hits", n(stats.memo_hits));
  json.metric(prefix + "_memo_misses", n(stats.memo_misses));
  json.metric(prefix + "_disk_hits", n(stats.disk_hits));
  json.metric(prefix + "_disk_misses", n(stats.disk_misses));
  json.metric(prefix + "_blocks", n(stats.blocks));
  json.metric(prefix + "_proc_steal_ops", n(stats.proc_steal_ops));
  json.metric(prefix + "_proc_stolen_cells", n(stats.proc_stolen_cells));
  json.metric(prefix + "_wall_s", stats.wall_s);
  json.metric(prefix + "_utilization", stats.utilization());
  json.metric(prefix + "_step_makespan", n(stats.stepMakespan()));
  json.metric(prefix + "_step_utilization", stats.stepUtilization());
  for (std::size_t w = 0; w < stats.executed.size(); ++w) {
    json.row(prefix + "_worker_" + std::to_string(w),
             {{"executed", n(stats.executed[w])},
              {"steps", w < stats.steps_run.size() ? n(stats.steps_run[w]) : 0},
              {"busy_s", w < stats.busy_s.size() ? stats.busy_s[w] : 0}});
  }
}

}  // namespace wfd::bench
