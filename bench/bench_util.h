// Shared helpers for the experiment harnesses: aligned table output and
// small statistics. Each bench binary prints the rows recorded in
// EXPERIMENTS.md; where wall-clock timing is the point (substrate costs)
// google-benchmark is used instead.
#pragma once

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "wfd.h"

namespace wfd::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void addRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> w(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < w.size(); ++c) {
        w[c] = std::max(w[c], r[c].size());
      }
    }
    auto line = [&] {
      std::string s = "+";
      for (std::size_t c = 0; c < w.size(); ++c) {
        s += std::string(w[c] + 2, '-') + "+";
      }
      std::puts(s.c_str());
    };
    auto row = [&](const std::vector<std::string>& r) {
      std::string s = "|";
      for (std::size_t c = 0; c < w.size(); ++c) {
        const std::string& cell = c < r.size() ? r[c] : "";
        s += " " + cell + std::string(w[c] - cell.size(), ' ') + " |";
      }
      std::puts(s.c_str());
    };
    line();
    row(headers_);
    line();
    for (const auto& r : rows_) row(r);
    line();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline Time median(std::vector<Time> xs) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

inline std::string fmt(Time t) { return std::to_string(t); }
inline std::string fmt(int v) { return std::to_string(v); }
inline std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}
inline std::string passFail(bool ok) { return ok ? "PASS" : "FAIL"; }

inline void banner(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace wfd::bench
