// E22: replicated agreement service under sustained load — repeated
// decisions, crash-and-replace, chaos mid-stream (sim/service,
// docs/SERVICE.md).
//
// Four certifications per invocation:
//   * campaign:  an (injector x workload) matrix of chaotic service
//     streams sharded through BatchRunner (--jobs) or the fabric
//     (--procs). Zero safety violations, all streams complete, and the
//     coverage gate FAILS the binary if any planned (injector, workload)
//     cell fired zero times — coverage is part of the certification.
//   * sustained: one long consensus stream (>= 100k sequential decided
//     instances full, --quick shrinks) measuring decisions/s and the
//     per-instance commit step-latency p50/p99, then a same-seed replay
//     that must reproduce the service hash bit-for-bit.
//   * sweep:     the exhaustive crash-at-every-instance-index sweep
//     (checkpoint prefix sharing); every variant must recover, replace
//     the victim and commit the full stream.
//   * negative:  100 seeded log-divergence streams (--quick: 20); the
//     log-safety checker must catch every one (100/100).
//
// `--json out.json` records the numbers CI archives as
// BENCH_service.json (decisions/s, latency percentiles, campaign
// counters); non-zero exit on any certification failure.
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace wfd;
using sim::BatchCell;
using sim::BatchRunner;
using sim::CellResult;
using sim::RunVerdict;
using sim::service::DetectorSource;
using sim::service::Protocol;
using sim::service::runCrashSweep;
using sim::service::runService;
using sim::service::ServiceBug;
using sim::service::ServiceConfig;
using sim::service::ServiceReport;
using sim::service::serviceVerdictName;
using sim::service::ServiceVerdict;
using sim::service::SweepReport;

int g_failures = 0;

void require(bool ok, const std::string& what) {
  if (!ok) {
    std::printf("  CERTIFICATION FAILURE: %s\n", what.c_str());
    ++g_failures;
  }
}

struct Workload {
  const char* name;
  Protocol proto;
  DetectorSource det;
  // Injector kinds this mode's chaos plan can legally fire (crash
  // segments are skipped for realized Upsilon lenses; link faults only
  // exist on the realized substrate) — the coverage gate's expectation.
  std::vector<std::string> injectors;
};

std::vector<Workload> workloads() {
  const std::vector<std::string> con = {"crash", "starvation", "fd_glitch",
                                        "stale_snapshot"};
  const std::vector<std::string> net_crash = {
      "crash", "starvation", "fd_glitch", "link_faults", "stale_snapshot"};
  const std::vector<std::string> net_nocrash = {
      "starvation", "fd_glitch", "link_faults", "stale_snapshot"};
  return {
      {"omega/constructed", Protocol::kOmegaConsensus,
       DetectorSource::kConstructed, con},
      {"fig1/constructed", Protocol::kFig1Upsilon,
       DetectorSource::kConstructed, con},
      {"fig2/constructed", Protocol::kFig2UpsilonF,
       DetectorSource::kConstructed, con},
      {"omega/net", Protocol::kOmegaConsensus, DetectorSource::kRealizedNet,
       net_crash},
      {"fig1/net", Protocol::kFig1Upsilon, DetectorSource::kRealizedNet,
       net_nocrash},
      {"fig2/net", Protocol::kFig2UpsilonF, DetectorSource::kRealizedNet,
       net_nocrash},
  };
}

ServiceConfig campaignConfig(const Workload& w, std::uint64_t seed,
                             bool quick) {
  ServiceConfig cfg;
  cfg.protocol = w.proto;
  cfg.detector = w.det;
  cfg.instances = quick ? 96 : 240;
  cfg.seed = seed;
  // Chaos EVERY segment: with >= 6 segments the rotation visits every
  // enabled injector kind at least once per stream.
  cfg.chaos.period = 1;
  cfg.chaos.seed = seed ^ 0xCAFE;
  cfg.chaos.stale_snapshot = true;
  return cfg;
}

void runCampaign(const wfd::bench::BenchArgs& args,
                 wfd::bench::JsonWriter& json) {
  wfd::bench::banner("service campaign: injector x workload matrix");
  const std::vector<Workload> ws = workloads();
  const int seeds = args.quick ? 2 : 4;
  std::vector<BatchCell> cells;
  for (const Workload& w : ws) {
    for (int s = 0; s < seeds; ++s) {
      BatchCell cell;
      cell.service =
          campaignConfig(w, 1000 + static_cast<std::uint64_t>(s), args.quick);
      cells.push_back(std::move(cell));
    }
  }
  const wfd::bench::WallTimer timer;
  std::vector<CellResult> results;
  if (args.procs > 1) {
    sim::fabric::FabricOptions fo;
    fo.procs = args.procs;
    fo.batch = args.batchOptions();
    results = sim::fabric::runFabric(fo, cells);
  } else {
    results = BatchRunner(args.batchOptions()).run(cells);
  }
  const double dt = timer.seconds();

  wfd::bench::Table table({"workload", "streams", "committed", "replacements",
                           "retries", "injectors fired"});
  long long committed = 0;
  for (std::size_t wi = 0; wi < ws.size(); ++wi) {
    const Workload& w = ws[wi];
    std::map<std::string, long long> fired;
    long long wc = 0, repl = 0, retries = 0;
    for (int s = 0; s < seeds; ++s) {
      const CellResult& r = results[wi * static_cast<std::size_t>(seeds) +
                                    static_cast<std::size_t>(s)];
      require(!r.error, std::string(w.name) + ": cell error: " + r.detail);
      require(r.verdict == RunVerdict::kOk,
              std::string(w.name) + ": " + r.check_detail);
      wc += static_cast<long long>(r.metrics.count("instances") != 0u
                                       ? r.metrics.at("instances")
                                       : 0);
      repl += static_cast<long long>(r.metrics.count("replacements") != 0u
                                         ? r.metrics.at("replacements")
                                         : 0);
      retries += static_cast<long long>(r.metrics.count("retries") != 0u
                                            ? r.metrics.at("retries")
                                            : 0);
      for (const auto& [k, v] : r.metrics) {
        if (k.rfind("inj_", 0) == 0) {
          fired[k.substr(4)] += static_cast<long long>(v);
        }
      }
    }
    committed += wc;
    // Coverage gate: every planned (injector, workload) cell non-empty.
    std::string firedStr;
    for (const std::string& inj : w.injectors) {
      require(fired[inj] > 0, std::string(w.name) + ": planned injector '" +
                                  inj + "' never fired");
      firedStr += (firedStr.empty() ? "" : " ") + inj + ":" +
                  std::to_string(fired[inj]);
    }
    // ...and nothing outside the plan fired.
    for (const auto& [k, v] : fired) {
      const bool planned =
          std::find(w.injectors.begin(), w.injectors.end(), k) !=
          w.injectors.end();
      require(planned || v == 0,
              std::string(w.name) + ": unplanned injector '" + k + "' fired");
    }
    table.addRow({w.name, wfd::bench::fmt(seeds), wfd::bench::fmt((int)wc),
                  wfd::bench::fmt((int)repl), wfd::bench::fmt((int)retries),
                  firedStr});
    json.row(std::string("campaign/") + w.name,
             {{"streams", static_cast<double>(seeds)},
              {"committed", static_cast<double>(wc)},
              {"replacements", static_cast<double>(repl)},
              {"retries", static_cast<double>(retries)}});
  }
  table.print();
  std::printf("campaign: %zu streams, %lld instances, %.2fs\n", cells.size(),
              committed, dt);
  json.metric("campaign_streams", static_cast<double>(cells.size()));
  json.metric("campaign_committed", static_cast<double>(committed));
  json.metric("campaign_wall_s", dt);
}

void runSustained(const wfd::bench::BenchArgs& args,
                  wfd::bench::JsonWriter& json) {
  wfd::bench::banner("sustained load: one long consensus stream");
  ServiceConfig cfg;
  cfg.instances = args.quick ? 5'000 : 100'000;
  cfg.seed = 20260808;
  cfg.chaos.period = 6;
  cfg.chaos.seed = 17;
  const wfd::bench::WallTimer timer;
  const ServiceReport rep = runService(cfg);
  const double dt = timer.seconds();
  require(rep.verdict == ServiceVerdict::kOk,
          std::string("sustained stream: ") + serviceVerdictName(rep.verdict) +
              ": " + rep.detail);
  require(rep.stats.committed == cfg.instances, "sustained stream truncated");
  const double dps = static_cast<double>(rep.stats.committed) / dt;
  std::printf(
      "%lld instances in %.2fs: %.0f decisions/s, lat p50=%.0f p99=%.0f "
      "steps, %d replacements, %d retries\n",
      rep.stats.committed, dt, dps, rep.stats.lat_p50, rep.stats.lat_p99,
      rep.stats.replacements, rep.stats.retries);

  // Same-seed replay: bit-identical service hash.
  const ServiceReport replay = runService(cfg);
  require(replay.service_hash == rep.service_hash,
          "same-seed replay diverged");
  std::printf("replay: %s (0x%016llx)\n",
              replay.service_hash == rep.service_hash ? "bit-identical"
                                                      : "DIVERGED",
              static_cast<unsigned long long>(rep.service_hash));

  json.metric("sustained_instances", static_cast<double>(rep.stats.committed));
  json.metric("sustained_wall_s", dt);
  json.metric("decisions_per_sec", dps);
  json.metric("lat_p50_steps", rep.stats.lat_p50);
  json.metric("lat_p99_steps", rep.stats.lat_p99);
  json.metric("sustained_replacements",
              static_cast<double>(rep.stats.replacements));
  json.metric("sustained_retries", static_cast<double>(rep.stats.retries));
  json.metric("sustained_steps", static_cast<double>(rep.stats.steps));
  json.metric("replay_identical",
              replay.service_hash == rep.service_hash ? 1 : 0);
}

void runSweep(const wfd::bench::BenchArgs& args,
              wfd::bench::JsonWriter& json) {
  wfd::bench::banner("crash-and-replace sweep: every instance index");
  ServiceConfig cfg;
  cfg.instances = args.quick ? 32 : 96;
  cfg.segment_len = 8;
  cfg.seed = 3;
  const wfd::bench::WallTimer timer;
  const SweepReport rep = runCrashSweep(cfg);
  const double dt = timer.seconds();
  require(static_cast<long long>(rep.variants.size()) == cfg.instances,
          "sweep variant count mismatch");
  int recovered = 0;
  for (const auto& v : rep.variants) {
    if (v.verdict == ServiceVerdict::kOk && v.committed == cfg.instances &&
        v.replacements >= 1) {
      ++recovered;
    } else {
      require(false, "sweep variant at instance " +
                         std::to_string(v.crash_index) + ": " +
                         serviceVerdictName(v.verdict) + " " + v.detail);
    }
  }
  std::printf("%zu variants, %d recovered, %lld prefix restores, %.2fs\n",
              rep.variants.size(), recovered, rep.restores, dt);
  json.metric("sweep_variants", static_cast<double>(rep.variants.size()));
  json.metric("sweep_recovered", static_cast<double>(recovered));
  json.metric("sweep_restores", static_cast<double>(rep.restores));
  json.metric("sweep_wall_s", dt);
}

void runNegative(const wfd::bench::BenchArgs& args,
                 wfd::bench::JsonWriter& json) {
  wfd::bench::banner("negative controls: seeded log divergence");
  const int trials = args.quick ? 20 : 100;
  int caught = 0;
  std::vector<BatchCell> cells;
  for (int i = 0; i < trials; ++i) {
    ServiceConfig cfg;
    cfg.instances = 60;
    cfg.seed = 500 + static_cast<std::uint64_t>(i);
    cfg.bug = ServiceBug::kLogDivergence;
    cfg.bug_seed = static_cast<std::uint64_t>(11 * i + 5);
    BatchCell cell;
    cell.service = cfg;
    cells.push_back(std::move(cell));
  }
  const std::vector<CellResult> results =
      BatchRunner(args.batchOptions()).run(cells);
  for (int i = 0; i < trials; ++i) {
    const CellResult& r = results[static_cast<std::size_t>(i)];
    if (!r.error && r.verdict == RunVerdict::kSafetyViolation) {
      ++caught;
    } else {
      require(false, "seeded bug " + std::to_string(i) +
                         " NOT caught: " + r.check_detail);
    }
  }
  std::printf("caught %d/%d\n", caught, trials);
  json.metric("negative_trials", static_cast<double>(trials));
  json.metric("negative_caught", static_cast<double>(caught));
}

}  // namespace

int main(int argc, char** argv) {
  const wfd::bench::BenchArgs args = wfd::bench::BenchArgs::parse(argc, argv);
  wfd::bench::JsonWriter json("service", args.jobs);
  json.note("mode", args.quick ? "quick" : "full");

  runCampaign(args, json);
  runSustained(args, json);
  runSweep(args, json);
  runNegative(args, json);

  json.metric("certification_failures", g_failures);
  if (!args.json_path.empty()) json.write(args.json_path);
  if (g_failures != 0) {
    std::printf("\n%d certification failure(s)\n", g_failures);
    return 1;
  }
  std::printf("\nall service certifications PASS\n");
  return 0;
}
