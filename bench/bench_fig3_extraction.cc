// Experiment E3/E8 (paper Fig. 3, Theorem 10 / Corollary 9): extract
// Upsilon^f from every stable non-trivial detector the library ships, and
// measure how the emulation's stabilization lags the source detector's.
#include "bench_util.h"

namespace wfd {
namespace {

using bench::Table;
using core::checkEmulatedUpsilonF;
using core::PhiPtr;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;

constexpr int kSeeds = 15;

struct Agg {
  bool all_ok = true;
  Time median_lag = 0;   // emulation last-change minus source stab time
  int stuck_at_pi = 0;   // runs that (legally) stayed at Pi
};

Agg sweep(int n_plus_1, int f, Time stab,
          const std::function<fd::FdPtr(const FailurePattern&, std::uint64_t)>&
              mk,
          const PhiPtr& phi, bool with_crashes) {
  Agg agg;
  std::vector<Time> lags;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto fp = with_crashes
                        ? FailurePattern::random(n_plus_1, f, 60, seed * 7 + 3)
                        : FailurePattern::failureFree(n_plus_1);
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = mk(fp, seed);
    cfg.seed = seed;
    cfg.max_steps = stab * 4 + 120'000;
    const auto rr = sim::runTask(
        cfg, [phi](Env& e, Value) { return core::extractUpsilonF(e, phi); },
        std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
    const auto rep = checkEmulatedUpsilonF(rr, f);
    agg.all_ok = agg.all_ok && rep.ok();
    if (rep.stable_value == ProcSet::full(n_plus_1)) ++agg.stuck_at_pi;
    lags.push_back(std::max<Time>(0, rep.last_change - stab));
  }
  agg.median_lag = bench::median(std::move(lags));
  return agg;
}

}  // namespace
}  // namespace wfd

int main() {
  using namespace wfd;
  bench::banner(
      "E3/E8 — Fig. 3: Upsilon^f extraction from stable non-trivial "
      "detectors (Theorem 10), 15 seeds per row");

  Table t({"source D", "n+1", "f", "crashes", "phi", "stab(D)",
           "median lag", "runs at Pi", "axioms"});

  const int n4 = 4, n5 = 5;

  struct Row {
    const char* name;
    int n_plus_1;
    int f;
    bool crashes;
    std::function<fd::FdPtr(const sim::FailurePattern&, std::uint64_t)> mk;
    core::PhiPtr phi;
    Time stab;
  };
  std::vector<Row> rows;
  for (const Time stab : {100L, 2000L}) {
    rows.push_back({"Omega", n4, n4 - 1, true,
                    [stab](const sim::FailurePattern& fp, std::uint64_t s) {
                      return fd::makeOmega(fp, stab, s);
                    },
                    core::phiOmegaK(n4), stab});
  }
  for (int f = 1; f <= 4; ++f) {
    rows.push_back({"Omega^f", n5, f, true,
                    [f](const sim::FailurePattern& fp, std::uint64_t s) {
                      return fd::makeOmegaK(fp, f, 150, s);
                    },
                    core::phiOmegaK(n5), 150});
  }
  rows.push_back({"Upsilon", n4, n4 - 1, false,
                  [](const sim::FailurePattern& fp, std::uint64_t s) {
                    return fd::makeUpsilon(fp, 200, s);
                  },
                  core::phiUpsilonSelf(), 200});
  rows.push_back({"anti-Omega", n4, n4 - 1, true,
                  [](const sim::FailurePattern& fp, std::uint64_t s) {
                    return fd::makeAntiOmega(fp, 200, s);
                  },
                  core::phiAntiOmega(), 200});
  rows.push_back({"<>P", n4, n4 - 1, true,
                  [](const sim::FailurePattern& fp, std::uint64_t s) {
                    return fd::makeEventuallyPerfect(fp, 200, s);
                  },
                  core::phiEventuallyPerfect(n4, n4 - 1), 200});
  rows.push_back({"P", n4, n4 - 1, true,
                  [](const sim::FailurePattern& fp, std::uint64_t) {
                    return fd::makePerfect(fp);
                  },
                  core::phiEventuallyPerfect(n4, n4 - 1), 0});
  // Inflated w exercises the line-15 batch machinery; failure-free so the
  // batches complete.
  for (int w : {1, 4}) {
    rows.push_back({w == 1 ? "Omega (w=1)" : "Omega (w=4)", 3, 2, false,
                    [](const sim::FailurePattern& fp, std::uint64_t s) {
                      return fd::makeOmega(fp, 150, s);
                    },
                    core::phiWithInflatedW(core::phiOmegaK(3), w), 150});
  }

  for (const auto& r : rows) {
    const auto agg = sweep(r.n_plus_1, r.f, r.stab, r.mk, r.phi, r.crashes);
    t.addRow({r.name, bench::fmt(r.n_plus_1), bench::fmt(r.f),
              r.crashes ? "random" : "none", r.phi->name(), bench::fmt(r.stab),
              bench::fmt(agg.median_lag), bench::fmt(agg.stuck_at_pi),
              bench::passFail(agg.all_ok)});
  }
  t.print();
  std::puts("Claim reproduced if every row PASSes: any stable f-non-trivial");
  std::puts("detector emulates Upsilon^f via Fig. 3 + phi_D (Theorem 10).");
  std::puts("'runs at Pi' counts runs whose output legally stuck at Pi");
  std::puts("(possible only when some process is faulty).");
  return 0;
}
