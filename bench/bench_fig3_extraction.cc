// Experiment E3/E8 (paper Fig. 3, Theorem 10 / Corollary 9): extract
// Upsilon^f from every stable non-trivial detector the library ships, and
// measure how the emulation's stabilization lags the source detector's.
//
// The whole (row x seed) grid is ONE batch sharded over --jobs workers
// (sim/batch.h): extraction cells are the heavy tail of the experiment
// suite (budgets of stab*4 + 120k steps), exactly the shape the
// work-stealing scheduler exists for. --steal/--no-steal selects the
// scheduler mode and --memo attaches the whole-run ReportCache, so a
// repeated grid (same detectors, same seeds) answers from the memo.
#include "bench_util.h"

namespace wfd {
namespace {

using bench::Table;
using core::checkEmulatedUpsilonF;
using core::PhiPtr;
using sim::BatchCell;
using sim::CellResult;
using sim::Env;
using sim::FailurePattern;

constexpr int kSeeds = 15;

struct Row {
  const char* name;
  int n_plus_1;
  int f;
  bool crashes;
  std::function<fd::FdPtr(const sim::FailurePattern&, std::uint64_t)> mk;
  core::PhiPtr phi;
  Time stab;
};

BatchCell makeCell(const Row& r, std::uint64_t seed) {
  const auto fp = r.crashes
                      ? FailurePattern::random(r.n_plus_1, r.f, 60, seed * 7 + 3)
                      : FailurePattern::failureFree(r.n_plus_1);
  BatchCell cell;
  cell.cfg.n_plus_1 = r.n_plus_1;
  cell.cfg.fp = fp;
  cell.cfg.fd = r.mk(fp, seed);
  cell.cfg.seed = seed;
  cell.cfg.max_steps = r.stab * 4 + 120'000;
  const PhiPtr phi = r.phi;
  cell.algo = [phi](Env& e, Value) { return core::extractUpsilonF(e, phi); };
  cell.proposals = std::vector<Value>(static_cast<std::size_t>(r.n_plus_1), 0);
  const int f = r.f;
  const int n_plus_1 = r.n_plus_1;
  const Time stab = r.stab;
  cell.post = [f, n_plus_1, stab](const sim::RunReport& rep, CellResult& out) {
    const auto chk = checkEmulatedUpsilonF(rep.result, f);
    if (!chk.ok()) {
      out.check_ok = false;
      out.check_detail = chk.violation;
    }
    out.metrics["lag"] =
        static_cast<double>(std::max<Time>(0, chk.last_change - stab));
    out.metrics["at_pi"] =
        chk.stable_value == ProcSet::full(n_plus_1) ? 1.0 : 0.0;
  };
  // Rows sharing a display name ("Omega" at two stab times) still key
  // apart through the detector digest; the phi map is the opaque part the
  // family must pin, and phi->name() does that.
  cell.memo_family = std::string("fig3:") + r.name + ":" + r.phi->name();
  return cell;
}

}  // namespace
}  // namespace wfd

int main(int argc, char** argv) {
  using namespace wfd;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  sim::ReportCache memo;
  const sim::BatchRunner runner(args.batchOptions(&memo));
  std::printf(
      "\n=== E3/E8 — Fig. 3: Upsilon^f extraction from stable non-trivial "
      "detectors (Theorem 10), %d seeds per row, jobs=%d, %s, memo %s ===\n",
      kSeeds, runner.jobs(), args.steal ? "stealing" : "static shards",
      args.memo ? "on" : "off");

  Table t({"source D", "n+1", "f", "crashes", "phi", "stab(D)",
           "median lag", "runs at Pi", "axioms"});

  const int n4 = 4, n5 = 5;

  std::vector<Row> rows;
  for (const Time stab : {100L, 2000L}) {
    rows.push_back({"Omega", n4, n4 - 1, true,
                    [stab](const sim::FailurePattern& fp, std::uint64_t s) {
                      return fd::makeOmega(fp, stab, s);
                    },
                    core::phiOmegaK(n4), stab});
  }
  for (int f = 1; f <= 4; ++f) {
    rows.push_back({"Omega^f", n5, f, true,
                    [f](const sim::FailurePattern& fp, std::uint64_t s) {
                      return fd::makeOmegaK(fp, f, 150, s);
                    },
                    core::phiOmegaK(n5), 150});
  }
  rows.push_back({"Upsilon", n4, n4 - 1, false,
                  [](const sim::FailurePattern& fp, std::uint64_t s) {
                    return fd::makeUpsilon(fp, 200, s);
                  },
                  core::phiUpsilonSelf(), 200});
  rows.push_back({"anti-Omega", n4, n4 - 1, true,
                  [](const sim::FailurePattern& fp, std::uint64_t s) {
                    return fd::makeAntiOmega(fp, 200, s);
                  },
                  core::phiAntiOmega(), 200});
  rows.push_back({"<>P", n4, n4 - 1, true,
                  [](const sim::FailurePattern& fp, std::uint64_t s) {
                    return fd::makeEventuallyPerfect(fp, 200, s);
                  },
                  core::phiEventuallyPerfect(n4, n4 - 1), 200});
  rows.push_back({"P", n4, n4 - 1, true,
                  [](const sim::FailurePattern& fp, std::uint64_t) {
                    return fd::makePerfect(fp);
                  },
                  core::phiEventuallyPerfect(n4, n4 - 1), 0});
  // Inflated w exercises the line-15 batch machinery; failure-free so the
  // batches complete.
  for (int w : {1, 4}) {
    rows.push_back({w == 1 ? "Omega (w=1)" : "Omega (w=4)", 3, 2, false,
                    [](const sim::FailurePattern& fp, std::uint64_t s) {
                      return fd::makeOmega(fp, 150, s);
                    },
                    core::phiWithInflatedW(core::phiOmegaK(3), w), 150});
  }

  // One cell per (row, seed); the whole grid shards as a single batch so
  // a heavy row cannot serialize behind a light one.
  std::vector<BatchCell> cells;
  cells.reserve(rows.size() * kSeeds);
  for (const Row& r : rows) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      cells.push_back(makeCell(r, seed));
    }
  }
  const bench::WallTimer wall;
  sim::BatchStats stats;
  const auto results = runner.run(cells, &stats);
  const double wall_s = wall.seconds();

  bool all_rows_ok = true;
  for (std::size_t ri = 0; ri < rows.size(); ++ri) {
    const Row& r = rows[ri];
    bool ok = true;
    int stuck_at_pi = 0;
    std::vector<Time> lags;
    for (std::size_t i = ri * kSeeds; i < (ri + 1) * kSeeds; ++i) {
      ok = ok && results[i].ok();
      const auto lag = results[i].metrics.find("lag");
      const auto at_pi = results[i].metrics.find("at_pi");
      lags.push_back(lag == results[i].metrics.end()
                         ? 0
                         : static_cast<Time>(lag->second));
      if (at_pi != results[i].metrics.end() && at_pi->second > 0) {
        ++stuck_at_pi;
      }
    }
    all_rows_ok = all_rows_ok && ok;
    t.addRow({r.name, bench::fmt(r.n_plus_1), bench::fmt(r.f),
              r.crashes ? "random" : "none", r.phi->name(), bench::fmt(r.stab),
              bench::fmt(bench::median(std::move(lags))),
              bench::fmt(stuck_at_pi), bench::passFail(ok)});
  }
  t.print();
  std::printf("wall %.2fs at jobs=%d; %zu steal ops moved %zu cells; memo "
              "%zu hits / %zu misses\n",
              wall_s, runner.jobs(), stats.steal_ops, stats.stolen_cells,
              stats.memo_hits, stats.memo_misses);

  if (!args.json_path.empty()) {
    bench::JsonWriter json("bench_fig3_extraction", runner.jobs());
    json.note("scheduler", args.steal ? "steal" : "static");
    json.note("memo", args.memo ? "on" : "off");
    json.metric("wall_s", wall_s);
    json.metric("cells", static_cast<double>(results.size()));
    json.metric("all_rows_ok", all_rows_ok ? 1 : 0);
    bench::emitBatchStats(json, "batch", stats);
    json.write(args.json_path);
  }

  std::puts("Claim reproduced if every row PASSes: any stable f-non-trivial");
  std::puts("detector emulates Upsilon^f via Fig. 3 + phi_D (Theorem 10).");
  std::puts("'runs at Pi' counts runs whose output legally stuck at Pi");
  std::puts("(possible only when some process is faulty).");
  return all_rows_ok ? 0 : 1;
}
