// Experiment E12 (extension; paper §1 motivation): timing assumptions
// provide failure information. Omega is *implemented* (no oracle) from
// heartbeats + adaptive timeouts under an eventually-synchronous
// scheduler, then composed through the paper's reductions down to
// Upsilon and Fig. 1 set agreement:
//
//   eventual synchrony -> Omega -> complement -> Upsilon -> decisions.
#include "bench_util.h"

namespace wfd {
namespace {

using bench::Table;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::RunResult;

RunResult runImpl(int n_plus_1, const FailurePattern& fp, Time gst,
                  std::uint64_t seed, Time horizon) {
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.seed = seed;
  sim::Run run(
      cfg, [](Env& e, Value) { return core::omegaFromEventualSynchrony(e); },
      std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
  sim::EventuallySynchronousPolicy policy(gst);
  const Time taken = run.scheduler().run(policy, horizon);
  return run.finish(taken);
}

void omegaTable() {
  bench::banner("E12a — Omega implemented from eventual synchrony");
  Table t({"n+1", "GST", "crashes", "median stabilization", "lag after GST",
           "Omega axioms"});
  for (int n_plus_1 : {3, 4, 6}) {
    for (const Time gst : {1000L, 8000L}) {
      for (int crashes : {0, n_plus_1 - 1}) {
        bool ok = true;
        std::vector<Time> stab;
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
          const auto fp =
              crashes == 0
                  ? FailurePattern::failureFree(n_plus_1)
                  : FailurePattern::random(n_plus_1, crashes, gst, seed * 13);
          const auto rr = runImpl(n_plus_1, fp, gst, seed,
                                  gst * 4 + 150'000);
          const auto rep = core::checkEmulatedOmega(rr);
          ok = ok && rep.ok() &&
               rep.stable_value == ProcSet::singleton(fp.correct().min());
          stab.push_back(rep.last_change);
        }
        const Time med = bench::median(std::move(stab));
        t.addRow({bench::fmt(n_plus_1), bench::fmt(gst), bench::fmt(crashes),
                  bench::fmt(med), bench::fmt(std::max<Time>(0, med - gst)),
                  bench::passFail(ok)});
      }
    }
  }
  t.print();
}

void chainTable() {
  bench::banner(
      "E12b — full chain: synchrony -> Omega -> Upsilon -> set agreement");
  Table t({"n+1", "crash pattern", "Omega stable", "Fig.1 distinct (<=n)",
           "chain"});
  for (int n_plus_1 : {3, 4, 5}) {
    for (int variant = 0; variant < 2; ++variant) {
      const auto fp = variant == 0
                          ? FailurePattern::failureFree(n_plus_1)
                          : FailurePattern::withCrashes(n_plus_1, {{1, 700}});
      const auto stage1 = runImpl(n_plus_1, fp, 2000, 5, 120'000);
      const auto ro = core::checkEmulatedOmega(stage1);
      const auto upsilon = fd::makeComplemented(
          fd::makeRecorded(stage1.trace(), n_plus_1, ProcSet::singleton(0),
                           "omega-impl"),
          n_plus_1);
      std::vector<Value> props(static_cast<std::size_t>(n_plus_1));
      for (int i = 0; i < n_plus_1; ++i) props[static_cast<std::size_t>(i)] = 100 + i;
      RunConfig cfg;
      cfg.n_plus_1 = n_plus_1;
      cfg.fp = fp;
      cfg.fd = upsilon;
      cfg.seed = 6;
      const auto stage2 = sim::runTask(
          cfg, [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); },
          props);
      const auto rs = core::checkKSetAgreement(stage2, n_plus_1 - 1, props);
      t.addRow({bench::fmt(n_plus_1), variant == 0 ? "none" : "p2@700",
                ro.stable_value.toString(), bench::fmt(rs.distinct),
                bench::passFail(ro.ok() && rs.ok())});
    }
  }
  t.print();
}

}  // namespace
}  // namespace wfd

int main() {
  using namespace wfd;
  omegaTable();
  chainTable();
  std::puts("");
  std::puts("Extension reproducing the paper's introductory motivation:");
  std::puts("timeout/heartbeat mechanisms under partial synchrony yield the");
  std::puts("failure information the oracles abstract — grounding the");
  std::puts("hierarchy Omega > Omega_n > Upsilon in a timing assumption.");
  return 0;
}
