// Experiment E9 (paper Sect. 4 & 5.3): the boundary equivalences.
//   * n+1 = 2: Upsilon and Omega are equivalent (both directions).
//   * f = 1:   Upsilon^1 -> Omega in E_1 (timestamp reduction).
#include "bench_util.h"

namespace wfd {
namespace {

using bench::Table;
using sim::Env;
using sim::FailurePattern;

void twoProcessEquivalence() {
  bench::banner("E9a — two processes: Upsilon <-> Omega equivalence");
  Table t({"direction", "failure pattern", "stab", "last change", "axioms"});
  const std::vector<std::pair<const char*, FailurePattern>> fps = {
      {"none", FailurePattern::failureFree(2)},
      {"p1 crashes", FailurePattern::withCrashes(2, {{0, 50}})},
      {"p2 crashes", FailurePattern::withCrashes(2, {{1, 50}})},
  };
  for (const auto& [label, fp] : fps) {
    for (const Time stab : {100L, 1000L}) {
      // Upsilon -> Omega.
      {
        bool ok = true;
        std::vector<Time> last;
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
          sim::RunConfig cfg;
          cfg.n_plus_1 = 2;
          cfg.fp = fp;
          cfg.fd = fd::makeUpsilon(fp, stab, seed);
          cfg.seed = seed;
          cfg.max_steps = stab * 3 + 20'000;
          const auto rr = sim::runTask(
              cfg,
              [](Env& e, Value) { return core::upsilonToOmegaTwoProcs(e); },
              {0, 0});
          const auto rep = core::checkEmulatedOmega(rr);
          ok = ok && rep.ok();
          last.push_back(rep.last_change);
        }
        t.addRow({"Upsilon -> Omega", label, bench::fmt(stab),
                  bench::fmt(bench::median(std::move(last))),
                  bench::passFail(ok)});
      }
      // Omega -> Upsilon.
      {
        bool ok = true;
        std::vector<Time> last;
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
          sim::RunConfig cfg;
          cfg.n_plus_1 = 2;
          cfg.fp = fp;
          cfg.fd = fd::makeOmega(fp, stab, seed);
          cfg.seed = seed;
          cfg.max_steps = stab * 3 + 20'000;
          const auto rr = sim::runTask(
              cfg, [](Env& e, Value) { return core::omegaKToUpsilonF(e); },
              {0, 0});
          const auto rep = core::checkEmulatedUpsilonF(rr, 1);
          ok = ok && rep.ok();
          last.push_back(rep.last_change);
        }
        t.addRow({"Omega -> Upsilon", label, bench::fmt(stab),
                  bench::fmt(bench::median(std::move(last))),
                  bench::passFail(ok)});
      }
    }
  }
  t.print();
}

void upsilon1ToOmega() {
  bench::banner("E9b — E_1: Upsilon^1 -> Omega (timestamp reduction)");
  Table t({"n+1", "Upsilon^1 stable output", "victim", "elected leader",
           "leader correct", "axioms"});
  for (int n_plus_1 : {3, 4, 6}) {
    // Case 1: proper subset output — complement elected.
    {
      const auto fp = FailurePattern::failureFree(n_plus_1);
      sim::RunConfig cfg;
      cfg.n_plus_1 = n_plus_1;
      cfg.fp = fp;
      cfg.fd = fd::makeUpsilonF(fp, 1, 200, 5);
      cfg.seed = 5;
      cfg.max_steps = 40'000;
      const auto rr = sim::runTask(
          cfg, [](Env& e, Value) { return core::upsilon1ToOmega(e); },
          std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
      const auto rep = core::checkEmulatedOmega(rr);
      t.addRow({bench::fmt(n_plus_1), "proper subset (size n)", "-",
                rep.stable_value.toString(),
                rep.legal ? "yes" : "no", bench::passFail(rep.ok())});
    }
    // Case 2: output Pi — timestamps must exclude the crashed process.
    for (Pid victim : {0, n_plus_1 - 1}) {
      const auto fp = FailurePattern::withCrashes(n_plus_1, {{victim, 300}});
      sim::RunConfig cfg;
      cfg.n_plus_1 = n_plus_1;
      cfg.fp = fp;
      cfg.fd = fd::makeScripted(
          "Upsilon1=Pi",
          [n_plus_1](Pid, Time) { return ProcSet::full(n_plus_1); }, 0);
      cfg.seed = 7;
      cfg.max_steps = 60'000;
      const auto rr = sim::runTask(
          cfg, [](Env& e, Value) { return core::upsilon1ToOmega(e); },
          std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
      const auto rep = core::checkEmulatedOmega(rr);
      t.addRow({bench::fmt(n_plus_1), "Pi (one faulty)",
                "p" + std::to_string(victim + 1),
                rep.stable_value.toString(), rep.legal ? "yes" : "no",
                bench::passFail(rep.ok() &&
                                !rep.stable_value.contains(victim))});
    }
  }
  t.print();
}

}  // namespace
}  // namespace wfd

int main() {
  using namespace wfd;
  twoProcessEquivalence();
  upsilon1ToOmega();
  std::puts("");
  std::puts("Sect. 4 boundary reproduced: with two processes Upsilon and");
  std::puts("Omega are interchangeable, and in E_1 Upsilon^1 already yields");
  std::puts("Omega — the separations of Theorems 1 and 5 need n, f >= 2.");
  return 0;
}
