// bench_core: the steps/s core benchmark that seeds the perf trajectory.
//
// Every experiment harness bottoms out in Scheduler::run's per-step loop,
// so its cost multiplies across millions of simulated steps per campaign.
// This bench measures that loop directly:
//
//   * spin-nN      pure-scheduler throughput at several n: every process
//                  loops OpNoop steps, so the measurement is scheduler +
//                  policy + execute overhead with no algorithm on top
//                  (RandomPolicy; spin-rr-n8 is the RoundRobin variant);
//   * fig1/2/3     the Fig. 1 / Fig. 2 / Fig. 3 workloads of E1–E3,
//                  repeated across a seed sweep — real algorithm mix:
//                  snapshots, FD queries, tuple-building registers.
//
// Output: a table plus (with --json) BENCH_core.json via JsonWriter, with
// build provenance stamped so before/after numbers across PRs are
// attributable. Determinism note: wall-clock here measures the HARNESS;
// the simulated runs themselves replay bit-identically regardless of how
// fast they execute (tests/golden_hash_test.cc pins that).
//
//   bench_core [--quick] [--json PATH]
#include "bench_util.h"

namespace wfd::bench {
namespace {

using core::extractUpsilonF;
using core::phiOmegaK;
using core::upsilonFSetAgreement;
using core::upsilonSetAgreement;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::RunResult;

struct Measurement {
  Time steps = 0;
  double seconds = 0;
  [[nodiscard]] double stepsPerSec() const {
    return seconds > 0 ? static_cast<double>(steps) / seconds : 0;
  }
};

// ---- Pure-scheduler spin: every step is an OpNoop ------------------------

sim::Coro<sim::Unit> spinner(Env& env, Value iters) {
  for (Value i = 0; i < iters; ++i) co_await env.yield();
  co_return sim::Unit{};
}

Measurement spin(int n_plus_1, Time target_steps, sim::PolicyKind policy) {
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.seed = 42;
  cfg.policy = policy;
  cfg.max_steps = target_steps;
  const Value iters = static_cast<Value>(target_steps);  // budget-bounded
  Measurement m;
  const WallTimer t;
  const RunResult rr = sim::runTask(
      cfg, [iters](Env& e, Value) { return spinner(e, iters); },
      std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
  m.seconds = t.seconds();
  m.steps = rr.steps;
  return m;
}

// ---- Fig. 1/2/3 workloads across a seed sweep ----------------------------

Measurement fig1Sweep(int runs) {
  Measurement m;
  const WallTimer t;
  for (int i = 0; i < runs; ++i) {
    const std::uint64_t seed = static_cast<std::uint64_t>(i) + 1;
    const int n_plus_1 = 4;
    const auto fp = FailurePattern::withCrashes(n_plus_1, {{1, 120}});
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = fd::makeUpsilon(fp, 150, seed);
    cfg.seed = seed;
    const RunResult rr = sim::runTask(
        cfg, [](Env& e, Value v) { return upsilonSetAgreement(e, v); },
        {10, 20, 30, 40});
    m.steps += rr.steps;
  }
  m.seconds = t.seconds();
  return m;
}

Measurement fig2Sweep(int runs) {
  Measurement m;
  const WallTimer t;
  for (int i = 0; i < runs; ++i) {
    const std::uint64_t seed = static_cast<std::uint64_t>(i) + 1;
    const int n_plus_1 = 5;
    const int f = 2;
    const auto fp = FailurePattern::withCrashes(n_plus_1, {{4, 200}});
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = fd::makeUpsilonF(fp, f, 180, seed);
    cfg.seed = seed;
    const RunResult rr = sim::runTask(
        cfg, [f](Env& e, Value v) { return upsilonFSetAgreement(e, f, v); },
        {10, 20, 30, 40, 50});
    m.steps += rr.steps;
  }
  m.seconds = t.seconds();
  return m;
}

Measurement fig3Sweep(int runs, Time budget) {
  Measurement m;
  const WallTimer t;
  const auto phi = phiOmegaK(4);
  for (int i = 0; i < runs; ++i) {
    const std::uint64_t seed = static_cast<std::uint64_t>(i) + 1;
    const int n_plus_1 = 4;
    const auto fp = FailurePattern::random(n_plus_1, n_plus_1 - 1, 40, seed);
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = fd::makeOmega(fp, 100, seed);
    cfg.seed = seed;
    cfg.max_steps = budget;
    const RunResult rr = sim::runTask(
        cfg, [phi](Env& e, Value) { return extractUpsilonF(e, phi); },
        std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
    m.steps += rr.steps;
  }
  m.seconds = t.seconds();
  return m;
}

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  using namespace wfd;
  using namespace wfd::bench;

  const BenchArgs args = BenchArgs::parse(argc, argv);
  // Core loop throughput is a single-thread property; --jobs only lands in
  // the JSON so trajectory entries stay comparable with the batch benches.
  const Time spin_budget = args.quick ? 200'000 : 2'000'000;
  const int fig12_runs = args.quick ? 200 : 2'000;
  const int fig3_runs = args.quick ? 3 : 20;
  const Time fig3_budget = 60'000;

  banner("core step-loop throughput (steps/s)");
  Table table({"workload", "n+1", "steps", "seconds", "Msteps/s"});
  JsonWriter json("bench_core", args.jobs);
  json.note("mode", args.quick ? "quick" : "full");

  const auto report = [&](const std::string& name, int n_plus_1,
                          const Measurement& m) {
    table.addRow({name, fmt(n_plus_1), fmt(m.steps), fmt(m.seconds),
                  fmt(m.stepsPerSec() / 1e6)});
    json.row(name, {{"n_plus_1", static_cast<double>(n_plus_1)},
                    {"steps", static_cast<double>(m.steps)},
                    {"seconds", m.seconds},
                    {"steps_per_s", m.stepsPerSec()}});
    return m;
  };

  double spin8 = 0;
  for (const int n : {2, 4, 8, 16, 32, 64}) {
    const Measurement m =
        report("spin-n" + std::to_string(n), n,
               spin(n, spin_budget, sim::PolicyKind::kRandom));
    if (n == 8) spin8 = m.stepsPerSec();
  }
  const Measurement rr = report("spin-rr-n8", 8,
                                spin(8, spin_budget, sim::PolicyKind::kRoundRobin));
  const Measurement f1 = report("fig1", 4, fig1Sweep(fig12_runs));
  const Measurement f2 = report("fig2", 5, fig2Sweep(fig12_runs));
  const Measurement f3 = report("fig3", 4, fig3Sweep(fig3_runs, fig3_budget));

  table.print();
  std::printf("headline: spin-n8 %.2f Msteps/s, rr %.2f, fig1 %.2f, "
              "fig2 %.2f, fig3 %.2f\n",
              spin8 / 1e6, rr.stepsPerSec() / 1e6, f1.stepsPerSec() / 1e6,
              f2.stepsPerSec() / 1e6, f3.stepsPerSec() / 1e6);

  json.metric("spin_n8_steps_per_s", spin8);
  json.metric("spin_rr_n8_steps_per_s", rr.stepsPerSec());
  json.metric("fig1_steps_per_s", f1.stepsPerSec());
  json.metric("fig2_steps_per_s", f2.stepsPerSec());
  json.metric("fig3_steps_per_s", f3.stepsPerSec());
  if (!args.json_path.empty() && !json.write(args.json_path)) return 1;
  return 0;
}
