// Experiment E1/E5 (paper Fig. 1, Theorem 2): regenerate the behaviour of
// the Upsilon-based wait-free n-set-agreement protocol.
//
// Rows report, per configuration, the median steps to global decision,
// the worst distinct-decision count observed (must stay <= n), and the
// checker verdict across all seeds. The paper's claim is qualitative —
// the protocol terminates and never exceeds n values — so the PASS
// columns are the reproduced "result"; the step counts document cost
// scaling for the record.
#include "bench_util.h"

namespace wfd {
namespace {

using bench::Table;
using core::checkKSetAgreement;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::SnapshotFlavor;

constexpr int kSeeds = 30;

struct Agg {
  Time median_steps = 0;
  int worst_distinct = 0;
  bool all_ok = true;
};

Agg sweep(int n_plus_1, Time stab, int max_crashes, SnapshotFlavor flavor,
          sim::PolicyKind policy) {
  std::vector<Time> steps;
  Agg agg;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto fp =
        max_crashes == 0
            ? FailurePattern::failureFree(n_plus_1)
            : FailurePattern::random(n_plus_1, max_crashes, stab + 300,
                                     seed * 101 + 17);
    std::vector<Value> props(static_cast<std::size_t>(n_plus_1));
    for (int i = 0; i < n_plus_1; ++i) props[static_cast<std::size_t>(i)] = 100 + i;
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = fd::makeUpsilon(fp, stab, seed);
    cfg.seed = seed;
    cfg.flavor = flavor;
    cfg.policy = policy;
    cfg.max_steps = 5'000'000;
    const auto rr = sim::runTask(
        cfg, [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); },
        props);
    const auto rep = checkKSetAgreement(rr, n_plus_1 - 1, props);
    agg.all_ok = agg.all_ok && rep.ok();
    agg.worst_distinct = std::max(agg.worst_distinct, rep.distinct);
    steps.push_back(rr.steps);
  }
  agg.median_steps = bench::median(std::move(steps));
  return agg;
}

}  // namespace
}  // namespace wfd

int main() {
  using namespace wfd;
  bench::banner(
      "E1/E5 — Fig. 1: Upsilon-based n-set-agreement (Theorem 2), "
      "30 seeds per row");

  Table t({"n+1", "schedule", "stab(Upsilon)", "crashes<=", "snapshot",
           "median steps", "max distinct (<=n)", "Theorem 2"});
  struct Row {
    int n_plus_1;
    sim::PolicyKind policy;
    Time stab;
    int crashes;
    sim::SnapshotFlavor flavor;
  };
  std::vector<Row> rows;
  for (int n_plus_1 : {2, 3, 4, 5, 6, 8}) {
    rows.push_back({n_plus_1, sim::PolicyKind::kRandom, 500, 0,
                    sim::SnapshotFlavor::kNative});
  }
  for (int n_plus_1 : {3, 4, 5, 6}) {
    rows.push_back({n_plus_1, sim::PolicyKind::kRandom, 500, n_plus_1 - 1,
                    sim::SnapshotFlavor::kNative});
  }
  for (Time stab : {0L, 200L, 2000L, 10000L}) {
    rows.push_back({4, sim::PolicyKind::kRoundRobin, stab, 0,
                    sim::SnapshotFlavor::kNative});
  }
  rows.push_back({4, sim::PolicyKind::kRandom, 500, 3,
                  sim::SnapshotFlavor::kAfek});
  rows.push_back({5, sim::PolicyKind::kRoundRobin, 500, 0,
                  sim::SnapshotFlavor::kAfek});
  // Scale rows (ProcSet carries up to 64 processes).
  rows.push_back({16, sim::PolicyKind::kRandom, 500, 15,
                  sim::SnapshotFlavor::kNative});
  rows.push_back({32, sim::PolicyKind::kRoundRobin, 500, 0,
                  sim::SnapshotFlavor::kNative});

  for (const auto& r : rows) {
    const auto agg = sweep(r.n_plus_1, r.stab, r.crashes, r.flavor, r.policy);
    t.addRow({bench::fmt(r.n_plus_1),
              r.policy == sim::PolicyKind::kRoundRobin ? "lockstep" : "random",
              bench::fmt(r.stab), bench::fmt(r.crashes),
              r.flavor == sim::SnapshotFlavor::kAfek ? "afek" : "native",
              bench::fmt(agg.median_steps), bench::fmt(agg.worst_distinct),
              bench::passFail(agg.all_ok && agg.worst_distinct <= r.n_plus_1 - 1)});
  }
  t.print();
  std::puts("Claim reproduced if every row PASSes: Upsilon + registers solve");
  std::puts("n-set-agreement among n+1 processes with up to n crashes.");
  return 0;
}
