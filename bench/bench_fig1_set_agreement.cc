// Experiment E1/E5 (paper Fig. 1, Theorem 2): regenerate the behaviour of
// the Upsilon-based wait-free n-set-agreement protocol.
//
// Rows report, per configuration, the median steps to global decision,
// the worst distinct-decision count observed (must stay <= n), and the
// checker verdict across all seeds. The paper's claim is qualitative —
// the protocol terminates and never exceeds n values — so the PASS
// columns are the reproduced "result"; the step counts document cost
// scaling for the record.
//
// All (row x seed) cells are independent, so the whole table is submitted
// as ONE batch (sim/batch.h) sharded over --jobs workers; per-cell trace
// hashes are bit-identical to serial execution, so the aggregated rows are
// too. The Upsilon history for each (pattern, stab, seed) triple is built
// once in a shared FdCache and served to every cell that sweeps it.
#include "bench_util.h"

namespace wfd {
namespace {

using bench::Table;
using core::checkKSetAgreement;
using sim::BatchCell;
using sim::CellResult;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::RunReport;
using sim::SnapshotFlavor;

constexpr int kSeeds = 30;

struct Row {
  int n_plus_1;
  sim::PolicyKind policy;
  Time stab;
  int crashes;
  sim::SnapshotFlavor flavor;
};

struct Agg {
  Time median_steps = 0;
  int worst_distinct = 0;
  bool all_ok = true;
};

BatchCell makeCell(const Row& r, std::uint64_t seed, sim::FdCache& fds) {
  const auto fp =
      r.crashes == 0
          ? FailurePattern::failureFree(r.n_plus_1)
          : FailurePattern::random(r.n_plus_1, r.crashes, r.stab + 300,
                                   seed * 101 + 17);
  std::vector<Value> props(static_cast<std::size_t>(r.n_plus_1));
  for (int i = 0; i < r.n_plus_1; ++i) {
    props[static_cast<std::size_t>(i)] = 100 + i;
  }
  BatchCell cell;
  cell.cfg.n_plus_1 = r.n_plus_1;
  cell.cfg.fp = fp;
  cell.cfg.fd = fds.upsilon(fp, r.stab, seed);
  cell.cfg.seed = seed;
  cell.cfg.flavor = r.flavor;
  cell.cfg.policy = r.policy;
  cell.cfg.max_steps = 5'000'000;
  cell.algo = [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); };
  cell.proposals = props;
  const int k = r.n_plus_1 - 1;
  cell.post = [k, props](const RunReport& rep, CellResult& out) {
    const auto check = checkKSetAgreement(rep.result, k, props);
    if (!check.ok()) {
      out.check_ok = false;
      out.check_detail = check.violation;
    }
    out.metrics["distinct"] = check.distinct;
  };
  return cell;
}

Agg aggregate(const std::vector<CellResult>& results, std::size_t from,
              std::size_t count) {
  Agg agg;
  std::vector<Time> steps;
  for (std::size_t i = from; i < from + count; ++i) {
    const CellResult& r = results[i];
    agg.all_ok = agg.all_ok && r.ok();
    const auto it = r.metrics.find("distinct");
    if (it != r.metrics.end()) {
      agg.worst_distinct =
          std::max(agg.worst_distinct, static_cast<int>(it->second));
    }
    steps.push_back(r.steps);
  }
  agg.median_steps = bench::median(std::move(steps));
  return agg;
}

}  // namespace
}  // namespace wfd

int main(int argc, char** argv) {
  using namespace wfd;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const sim::BatchRunner runner(args.batchOptions());
  std::printf(
      "\n=== E1/E5 — Fig. 1: Upsilon-based n-set-agreement (Theorem 2), "
      "%d seeds per row, jobs=%d ===\n",
      kSeeds, runner.jobs());

  std::vector<Row> rows;
  for (int n_plus_1 : {2, 3, 4, 5, 6, 8}) {
    rows.push_back({n_plus_1, sim::PolicyKind::kRandom, 500, 0,
                    sim::SnapshotFlavor::kNative});
  }
  for (int n_plus_1 : {3, 4, 5, 6}) {
    rows.push_back({n_plus_1, sim::PolicyKind::kRandom, 500, n_plus_1 - 1,
                    sim::SnapshotFlavor::kNative});
  }
  for (Time stab : {0L, 200L, 2000L, 10000L}) {
    rows.push_back({4, sim::PolicyKind::kRoundRobin, stab, 0,
                    sim::SnapshotFlavor::kNative});
  }
  rows.push_back({4, sim::PolicyKind::kRandom, 500, 3,
                  sim::SnapshotFlavor::kAfek});
  rows.push_back({5, sim::PolicyKind::kRoundRobin, 500, 0,
                  sim::SnapshotFlavor::kAfek});
  // Scale rows (ProcSet carries up to 64 processes).
  rows.push_back({16, sim::PolicyKind::kRandom, 500, 15,
                  sim::SnapshotFlavor::kNative});
  rows.push_back({32, sim::PolicyKind::kRoundRobin, 500, 0,
                  sim::SnapshotFlavor::kNative});

  // One flat batch: cell (row * kSeeds + s) is row `row`, seed s+1. The
  // generator runs on the workers; the FdCache it shares locks internally.
  sim::FdCache fds;
  const bench::WallTimer wall;
  sim::BatchStats batch_stats;
  const auto results = runner.run(
      rows.size() * kSeeds,
      [&rows, &fds](std::size_t i) {
        const Row& r = rows[i / kSeeds];
        const std::uint64_t seed = static_cast<std::uint64_t>(i % kSeeds) + 1;
        return makeCell(r, seed, fds);
      },
      &batch_stats);
  const double wall_s = wall.seconds();

  Table t({"n+1", "schedule", "stab(Upsilon)", "crashes<=", "snapshot",
           "median steps", "max distinct (<=n)", "Theorem 2"});
  bool all_rows_pass = true;
  long long total_steps = 0;
  for (const CellResult& r : results) total_steps += r.steps;
  bench::JsonWriter json("bench_fig1_set_agreement", runner.jobs());
  for (std::size_t row = 0; row < rows.size(); ++row) {
    const Row& r = rows[row];
    const Agg agg = aggregate(results, row * kSeeds, kSeeds);
    const bool pass = agg.all_ok && agg.worst_distinct <= r.n_plus_1 - 1;
    all_rows_pass = all_rows_pass && pass;
    t.addRow({bench::fmt(r.n_plus_1),
              r.policy == sim::PolicyKind::kRoundRobin ? "lockstep" : "random",
              bench::fmt(r.stab), bench::fmt(r.crashes),
              r.flavor == sim::SnapshotFlavor::kAfek ? "afek" : "native",
              bench::fmt(agg.median_steps), bench::fmt(agg.worst_distinct),
              bench::passFail(pass)});
    json.row("n" + std::to_string(r.n_plus_1) + "_stab" +
                 std::to_string(r.stab) + "_crash" +
                 std::to_string(r.crashes) + "_" +
                 (r.flavor == sim::SnapshotFlavor::kAfek ? "afek" : "native"),
             {{"median_steps", static_cast<double>(agg.median_steps)},
              {"max_distinct", static_cast<double>(agg.worst_distinct)},
              {"pass", pass ? 1.0 : 0.0}});
  }
  t.print();
  std::printf("wall %.2fs at jobs=%d — %zu cells, %.0f steps/s; fd cache "
              "%zu built / %zu served\n",
              wall_s, runner.jobs(), results.size(),
              wall_s > 0 ? total_steps / wall_s : 0.0, fds.misses(),
              fds.hits() + fds.misses());
  if (!args.json_path.empty()) {
    json.metric("wall_s", wall_s);
    json.metric("cells", static_cast<double>(results.size()));
    json.metric("steps_per_s", wall_s > 0 ? total_steps / wall_s : 0.0);
    bench::emitBatchStats(json, "batch", batch_stats);
    json.write(args.json_path);
  }
  std::puts("Claim reproduced if every row PASSes: Upsilon + registers solve");
  std::puts("n-set-agreement among n+1 processes with up to n crashes.");
  return all_rows_pass ? 0 : 1;
}
