// E16: chaos certification — thousands of injector-composed runs, sharded
// across a worker pool (sim/batch.h).
//
// Three campaigns over the Fig. 1 / Fig. 2 / Fig. 3 workloads:
//   * legal:    seed-indexed compositions of legal injectors (crash
//     placement incl. kFdLeader/kOnDecide critical-step strategies,
//     bounded starvation windows, shared-memory op delay, in-axiom FD
//     glitches). Certifies that safety NEVER breaks: zero safety
//     violations, zero axiom violations, and every decided run passes
//     checkKSetAgreement. Fig. 3 runs forever by design and must end in
//     kBudgetExhausted — a structured report, never an abort.
//   * negative: illegal FD glitches driven through an FD-sampler
//     automaton (detection must not depend on whether a workload happens
//     to query its detector). Certifies 100% detection: every run ends
//     in kAxiomViolation.
//   * replay:   a sample of chaos runs is re-executed and must reproduce
//     verdict, step count and trace hash bit-for-bit. With --jobs > 1 the
//     two executions land on different workers, so this also certifies
//     the batch determinism contract on every invocation.
//
// Each (seed, workload) pair is one BatchCell; driveWatchedBatch shards
// them over --jobs workers (default: all hardware) and returns results in
// submission order, so the certification logic below is identical at any
// pool size. The soak also prints an (injector x workload) coverage
// matrix — which chaos cells this run actually visited (ROADMAP item) —
// and FAILS (non-zero exit) if any planned cell is empty: coverage is
// part of the certification, not decoration. `--json out.json` records
// runs, wall time, steps/s and scheduler/memo counters per campaign;
// --steal/--no-steal and --memo/--no-memo select the batch scheduler
// mode and the whole-run ReportCache (replay determinism always
// re-executes, memo or not).
//
// --quick shrinks the campaign for CI smoke; the full depth (>= 5,000
// legal + >= 1,000 negative runs) is the scheduled soak and the numbers
// quoted in EXPERIMENTS.md row E16.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace wfd;
using sim::BatchCell;
using sim::CellResult;
using sim::ChaosConfig;
using sim::CrashInjection;
using sim::Env;
using sim::FailurePattern;
using sim::GlitchKind;
using sim::OpDelay;
using sim::RunConfig;
using sim::RunReport;
using sim::RunVerdict;
using sim::WatchdogConfig;

int g_failures = 0;

void require(bool ok, const std::string& what) {
  if (!ok) {
    std::printf("  CERTIFICATION FAILURE: %s\n", what.c_str());
    ++g_failures;
  }
}

// Seed-indexed legal injector composition (docs/CHAOS.md): every run gets
// a different mix of crash strategies, schedule bias and in-axiom FD
// noise, all derived from the run seed alone.
ChaosConfig legalChaos(std::uint64_t seed, int n_plus_1, int max_faulty,
                       ProcSet protect) {
  ChaosConfig c;
  c.seed = seed;
  c.max_faulty = max_faulty;
  c.protected_pids = protect;
  switch (seed % 3) {
    case 0: c.glitch = {GlitchKind::kNone, 0, 0}; break;
    case 1: c.glitch = {GlitchKind::kScrambleNoise, 0, seed * 31}; break;
    case 2: c.glitch = {GlitchKind::kDelayStabilization, 300, seed * 17}; break;
  }
  if (seed % 2 == 0) {
    c.crashes.push_back({CrashInjection::Strategy::kRandom, -1, 0,
                         /*horizon=*/900, /*count=*/2, seed * 7});
  }
  if (seed % 5 == 0) {
    c.crashes.push_back(
        {CrashInjection::Strategy::kFdLeader, -1, /*at=*/400, 0, 1, 0});
  }
  if (seed % 7 == 0) {
    c.crashes.push_back(
        {CrashInjection::Strategy::kOnDecide, -1, 0, 0, /*count=*/1, 0});
  }
  if (seed % 3 == 0) {
    c.starvation.push_back(
        {ProcSet{static_cast<Pid>(seed % n_plus_1)}, 150, 300});
  }
  if (seed % 2 == 1) c.op_delay = OpDelay{48, 16, seed};
  return c;
}

// ---- (injector x workload) coverage matrix (ROADMAP chaos follow-up) ----

using CoverageMatrix = std::map<std::string, std::map<std::string, int>>;

const char* crashStrategyName(CrashInjection::Strategy s) {
  switch (s) {
    case CrashInjection::Strategy::kAtTime: return "crash:at-time";
    case CrashInjection::Strategy::kRandom: return "crash:random";
    case CrashInjection::Strategy::kFdLeader: return "crash:fd-leader";
    case CrashInjection::Strategy::kOnDecide: return "crash:on-decide";
  }
  return "crash:?";
}

void recordCoverage(CoverageMatrix& m, const std::string& workload,
                    const ChaosConfig& c) {
  std::vector<std::string> active;
  if (c.glitch.kind != GlitchKind::kNone) {
    active.push_back(std::string("glitch:") + sim::glitchName(c.glitch.kind));
  }
  for (const auto& cr : c.crashes) {
    active.push_back(crashStrategyName(cr.strategy));
  }
  if (!c.starvation.empty()) active.push_back("sched:starvation");
  if (c.op_delay.has_value()) active.push_back("sched:op-delay");
  if (active.empty()) active.push_back("(no injector)");
  std::sort(active.begin(), active.end());
  active.erase(std::unique(active.begin(), active.end()), active.end());
  for (const auto& a : active) ++m[a][workload];
}

void printCoverage(const CoverageMatrix& m,
                   const std::vector<std::string>& workloads) {
  bench::banner("(injector x workload) coverage — cells visited this soak");
  std::vector<std::string> headers{"injector"};
  headers.insert(headers.end(), workloads.begin(), workloads.end());
  bench::Table t(std::move(headers));
  for (const auto& [injector, per_wl] : m) {
    std::vector<std::string> row{injector};
    for (const auto& wl : workloads) {
      const auto it = per_wl.find(wl);
      row.push_back(it == per_wl.end() ? "-" : bench::fmt(it->second));
    }
    t.addRow(std::move(row));
  }
  t.print();
}

// The soak PLANS every one of these (injector, workload) cells: the
// quick campaign sizes are chosen so each seed-derived injector fires at
// least once per workload. A refactor of legalChaos or a workload that
// silently stops visiting a cell must FAIL certification, not just
// shrink a printed table.
void checkCoverage(const CoverageMatrix& m) {
  const std::vector<const char*> legal = {
      "glitch:scramble-noise", "glitch:delay-stabilization",
      "crash:random",          "crash:fd-leader",
      "crash:on-decide",       "sched:starvation",
      "sched:op-delay"};
  const std::vector<const char*> illegal = {
      "glitch:empty-answer", "glitch:undersized-answer",
      "glitch:post-stab-flap", "glitch:stab-to-correct",
      "glitch:stab-exclude-correct"};
  const std::vector<std::pair<const char*, const std::vector<const char*>*>>
      wants = {{"fig1", &legal},
               {"fig2", &legal},
               {"fig3", &legal},
               {"negative", &illegal}};
  for (const auto& [workload, injectors] : wants) {
    for (const char* inj : *injectors) {
      const auto it = m.find(inj);
      const bool hit = it != m.end() && it->second.count(workload) > 0 &&
                       it->second.at(workload) > 0;
      require(hit, std::string("coverage hole: planned cell (") + inj +
                       " x " + workload + ") was never visited");
    }
  }
}

// Scheduler/memo counters summed across the soak's batches.
struct PoolTotals {
  sim::BatchStats last;
  std::size_t steal_ops = 0;
  std::size_t stolen_cells = 0;
  std::size_t memo_hits = 0;
  std::size_t memo_misses = 0;

  void add(const sim::BatchStats& s) {
    last = s;
    steal_ops += s.steal_ops;
    stolen_cells += s.stolen_cells;
    memo_hits += s.memo_hits;
    memo_misses += s.memo_misses;
  }
};

// ---- Campaign aggregation ------------------------------------------------

struct CampaignStats {
  std::map<RunVerdict, int> verdicts;
  int runs = 0;
  int errors = 0;
  int agreement_failures = 0;
  long long total_steps = 0;

  void add(const CellResult& r) {
    ++runs;
    total_steps += r.steps;
    if (r.error) {
      ++errors;
      return;
    }
    ++verdicts[r.verdict];
    if (!r.check_ok) ++agreement_failures;
  }
  [[nodiscard]] int count(RunVerdict v) const {
    const auto it = verdicts.find(v);
    return it == verdicts.end() ? 0 : it->second;
  }
  [[nodiscard]] std::string histogram() const {
    std::string s;
    for (const auto& [v, n] : verdicts) {
      if (!s.empty()) s += " ";
      s += std::string(sim::runVerdictName(v)) + "=" + std::to_string(n);
    }
    return s.empty() ? "-" : s;
  }
};

// ---- Workload constructors (legality contract: stable sets pinned so
// injected crashes cannot invalidate the FD's axioms) ----

RunConfig fig1Config(std::uint64_t seed) {
  const int n_plus_1 = 4;
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = FailurePattern::withCrashes(n_plus_1, {{n_plus_1 - 1, 60}});
  cfg.fd =
      fd::makeUpsilon(*cfg.fp, ProcSet::full(n_plus_1), /*stab=*/250, seed);
  cfg.seed = seed;
  return cfg;
}

RunConfig fig2Config(std::uint64_t seed) {
  const int n_plus_1 = 5;
  const int f = 2;
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = FailurePattern::withCrashes(n_plus_1, {{n_plus_1 - 1, 80}});
  cfg.fd = fd::makeUpsilonF(*cfg.fp, f, ProcSet::full(n_plus_1),
                            /*stab=*/250, seed);
  cfg.seed = seed;
  return cfg;
}

RunConfig fig3Config(std::uint64_t seed) {
  const int n_plus_1 = 4;
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = FailurePattern::withCrashes(n_plus_1, {{3, 60}});
  cfg.fd = fd::makeOmega(*cfg.fp, /*stab=*/120, seed);
  cfg.seed = seed;
  return cfg;
}

// Post-hook: certify k-set agreement on the worker, while the trace is
// still alive; only the verdict string survives into the CellResult.
sim::CellPost agreementCheck(int k, std::vector<Value> props) {
  return [k, props = std::move(props)](const RunReport& rep,
                                       CellResult& out) {
    if (rep.verdict != RunVerdict::kOk) return;
    const auto check = core::checkKSetAgreement(rep.result, k, props);
    if (!check.ok()) {
      out.check_ok = false;
      out.check_detail = check.violation;
    }
  };
}

BatchCell fig1Cell(std::uint64_t seed, const std::vector<Value>& props) {
  BatchCell cell;
  cell.cfg = fig1Config(seed);
  cell.chaos = legalChaos(seed, 4, /*max_faulty=*/2, {});
  cell.watchdog = WatchdogConfig{3'000'000, 0, 3};
  cell.algo = [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); };
  cell.proposals = props;
  cell.post = agreementCheck(3, props);
  cell.memo_family = "chaos-fig1";
  return cell;
}

CampaignStats legalFig1(int runs, const sim::BatchOptions& opts,
                        CoverageMatrix& cover, PoolTotals& pool) {
  const auto props = std::vector<Value>{100, 101, 102, 103};
  std::vector<BatchCell> cells;
  cells.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    const std::uint64_t seed = static_cast<std::uint64_t>(i) + 1;
    cells.push_back(fig1Cell(seed, props));
    recordCoverage(cover, "fig1", *cells.back().chaos);
  }
  sim::BatchStats stats;
  const auto results = driveWatchedBatch(cells, opts, &stats);
  pool.add(stats);
  CampaignStats st;
  for (const CellResult& r : results) {
    st.add(r);
    const std::string seed = std::to_string(r.index + 1);
    require(!r.error, "fig1 seed " + seed + " errored: " + r.detail);
    require(r.verdict != RunVerdict::kSafetyViolation,
            "fig1 seed " + seed + ": " + r.detail);
    require(r.verdict != RunVerdict::kAxiomViolation,
            "fig1 seed " + seed + " flagged a LEGAL injector: " + r.detail);
    require(r.check_ok, "fig1 seed " + seed + ": " + r.check_detail);
  }
  return st;
}

CampaignStats legalFig2(int runs, const sim::BatchOptions& opts,
                        CoverageMatrix& cover, PoolTotals& pool) {
  const auto props = std::vector<Value>{100, 101, 102, 103, 104};
  std::vector<BatchCell> cells;
  cells.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    const std::uint64_t seed = static_cast<std::uint64_t>(i) + 1;
    BatchCell cell;
    cell.cfg = fig2Config(seed);
    // E_2: the pre-seeded crash plus at most one injected.
    cell.chaos = legalChaos(seed, 5, /*max_faulty=*/2, {});
    cell.watchdog = WatchdogConfig{4'000'000, 0, 2};
    cell.algo = [](Env& e, Value v) {
      return core::upsilonFSetAgreement(e, 2, v);
    };
    cell.proposals = props;
    cell.post = agreementCheck(2, props);
    cell.memo_family = "chaos-fig2";
    recordCoverage(cover, "fig2", *cell.chaos);
    cells.push_back(std::move(cell));
  }
  sim::BatchStats stats;
  const auto results = driveWatchedBatch(cells, opts, &stats);
  pool.add(stats);
  CampaignStats st;
  for (const CellResult& r : results) {
    st.add(r);
    const std::string seed = std::to_string(r.index + 1);
    require(!r.error, "fig2 seed " + seed + " errored: " + r.detail);
    require(r.verdict != RunVerdict::kSafetyViolation,
            "fig2 seed " + seed + ": " + r.detail);
    require(r.verdict != RunVerdict::kAxiomViolation,
            "fig2 seed " + seed + " flagged a LEGAL injector: " + r.detail);
    require(r.check_ok, "fig2 seed " + seed + ": " + r.check_detail);
  }
  return st;
}

CampaignStats legalFig3(int runs, const sim::BatchOptions& opts,
                        CoverageMatrix& cover, PoolTotals& pool) {
  const auto phi = core::phiOmegaK(4);
  std::vector<BatchCell> cells;
  cells.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    const std::uint64_t seed = static_cast<std::uint64_t>(i) + 1;
    BatchCell cell;
    cell.cfg = fig3Config(seed);
    // The extraction's Omega leader (p1, the lowest-id correct process)
    // anchors the detector's axioms: protect it from crash injection.
    cell.chaos = legalChaos(seed, 4, /*max_faulty=*/2, ProcSet{0});
    cell.watchdog = WatchdogConfig{/*step_budget=*/15'000, 0, 0};
    cell.algo = [phi](Env& e, Value) { return core::extractUpsilonF(e, phi); };
    cell.proposals = std::vector<Value>(4, 0);
    cell.memo_family = "chaos-fig3";
    recordCoverage(cover, "fig3", *cell.chaos);
    cells.push_back(std::move(cell));
  }
  sim::BatchStats stats;
  const auto results = driveWatchedBatch(cells, opts, &stats);
  pool.add(stats);
  CampaignStats st;
  for (const CellResult& r : results) {
    st.add(r);
    // Runs-forever workload: the ONLY acceptable outcome is a structured
    // budget cutoff — anything else is a certification failure.
    require(!r.error && r.verdict == RunVerdict::kBudgetExhausted,
            "fig3 seed " + std::to_string(r.index + 1) + ": " +
                (r.error ? "error" : sim::runVerdictName(r.verdict)) + " " +
                r.detail);
  }
  return st;
}

// ---- Negative controls ----

sim::AlgoFn fdSampler() {
  return [](Env& e, Value) -> sim::Coro<sim::Unit> {
    for (int i = 0; i < 60; ++i) (void)co_await e.queryFd();
    co_return sim::Unit{};
  };
}

struct NegativeStats {
  int runs = 0;
  int detected = 0;
  long long total_steps = 0;
};

NegativeStats negativeControls(int runs_per_kind,
                               const sim::BatchOptions& opts,
                               CoverageMatrix& cover, PoolTotals& pool) {
  const auto props4 = std::vector<Value>{0, 0, 0, 0};
  const GlitchKind upsilon_kinds[] = {
      GlitchKind::kEmptyAnswer, GlitchKind::kUndersizedAnswer,
      GlitchKind::kPostStabFlap, GlitchKind::kStabToCorrect};
  std::vector<BatchCell> cells;
  std::vector<std::string> labels;
  for (const GlitchKind kind : upsilon_kinds) {
    for (int i = 0; i < runs_per_kind; ++i) {
      const std::uint64_t seed = static_cast<std::uint64_t>(i) + 1;
      BatchCell cell;
      cell.cfg.n_plus_1 = 4;
      cell.cfg.fp = FailurePattern::failureFree(4);
      cell.cfg.fd = fd::makeUpsilonF(*cell.cfg.fp, 2, /*stab=*/0, seed);
      cell.cfg.seed = seed * 3 + 1;
      ChaosConfig chaos;
      chaos.glitch = {kind, 0, seed};
      cell.chaos = chaos;
      cell.watchdog = WatchdogConfig{200'000, 0, 0};
      cell.algo = fdSampler();
      cell.proposals = props4;
      cell.memo_family = "chaos-neg-upsilon";
      recordCoverage(cover, "negative", chaos);
      labels.push_back(std::string(sim::glitchName(kind)) + " seed " +
                       std::to_string(seed));
      cells.push_back(std::move(cell));
    }
  }
  // Omega^k end-condition control needs faulty processes to stabilize on.
  for (int i = 0; i < runs_per_kind; ++i) {
    const std::uint64_t seed = static_cast<std::uint64_t>(i) + 1;
    BatchCell cell;
    cell.cfg.n_plus_1 = 4;
    cell.cfg.fp = FailurePattern::withCrashes(4, {{2, 10}, {3, 10}});
    cell.cfg.fd = fd::makeOmegaK(*cell.cfg.fp, 2, /*stab=*/0, seed);
    cell.cfg.seed = seed * 5 + 2;
    ChaosConfig chaos;
    chaos.glitch = {GlitchKind::kStabExcludeCorrect, 0, seed};
    cell.chaos = chaos;
    cell.watchdog = WatchdogConfig{200'000, 0, 0};
    cell.algo = fdSampler();
    cell.proposals = props4;
    cell.memo_family = "chaos-neg-omegak";
    recordCoverage(cover, "negative", chaos);
    labels.push_back("stab-exclude-correct seed " + std::to_string(seed));
    cells.push_back(std::move(cell));
  }
  sim::BatchStats stats;
  const auto results = driveWatchedBatch(cells, opts, &stats);
  pool.add(stats);
  NegativeStats st;
  for (const CellResult& r : results) {
    ++st.runs;
    st.total_steps += r.steps;
    if (!r.error && r.verdict == RunVerdict::kAxiomViolation) {
      ++st.detected;
    } else {
      require(false, "negative control " + labels[r.index] + " escaped: " +
                         (r.error ? r.detail : sim::runVerdictName(r.verdict)));
    }
  }
  return st;
}

// ---- Replay determinism ----

int replayDeterminism(int pairs, sim::BatchOptions opts) {
  // The whole point is to EXECUTE each seed twice; a memo would answer
  // the replay from the first run and certify nothing. Always off here,
  // whatever --memo said.
  opts.memo = nullptr;
  const auto props = std::vector<Value>{100, 101, 102, 103};
  // Submit each seed's run twice in one batch: with jobs > 1 the two
  // executions land on different workers, so bit-identical results also
  // certify that pool size cannot leak into a run.
  std::vector<BatchCell> cells;
  for (int rep = 0; rep < 2; ++rep) {
    for (int i = 0; i < pairs; ++i) {
      const std::uint64_t seed = static_cast<std::uint64_t>(i) * 997 + 13;
      cells.push_back(fig1Cell(seed, props));
    }
  }
  const auto results = driveWatchedBatch(cells, opts);
  int ok = 0;
  for (int i = 0; i < pairs; ++i) {
    const CellResult& a = results[static_cast<std::size_t>(i)];
    const CellResult& b = results[static_cast<std::size_t>(i + pairs)];
    const bool same = !a.error && !b.error && a.verdict == b.verdict &&
                      a.steps == b.steps && a.trace_hash == b.trace_hash;
    if (same) {
      ++ok;
    } else {
      require(false, "replay divergence at seed " +
                         std::to_string(static_cast<std::uint64_t>(i) * 997 +
                                        13));
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const bool quick = args.quick;
  sim::ReportCache memo;
  const sim::BatchOptions opts = args.batchOptions(&memo);
  const int jobs = sim::resolveJobs(args.jobs);
  // Full depth: >= 5,000 legal runs + >= 1,000 negative controls (the
  // numbers EXPERIMENTS.md row E16 quotes). --quick is the CI smoke.
  const int fig1_runs = quick ? 160 : 2200;
  const int fig2_runs = quick ? 120 : 1800;
  const int fig3_runs = quick ? 60 : 1000;
  const int neg_per_kind = quick ? 12 : 200;
  const int replay_pairs = quick ? 6 : 25;

  std::printf("\n=== chaos certification (%s, jobs=%d, %s, memo %s) ===\n",
              quick ? "--quick" : "full depth", jobs,
              args.steal ? "stealing" : "static shards",
              args.memo ? "on" : "off");
  const bench::WallTimer wall;
  CoverageMatrix cover;
  PoolTotals pool;
  const CampaignStats f1 = legalFig1(fig1_runs, opts, cover, pool);
  const CampaignStats f2 = legalFig2(fig2_runs, opts, cover, pool);
  const CampaignStats f3 = legalFig3(fig3_runs, opts, cover, pool);
  const NegativeStats neg = negativeControls(neg_per_kind, opts, cover, pool);
  const int replays_ok = replayDeterminism(replay_pairs, opts);
  const double wall_s = wall.seconds();

  bench::Table t({"campaign", "runs", "verdicts", "safety viol",
                  "certified"});
  const int legal_safety = f1.count(RunVerdict::kSafetyViolation) +
                           f2.count(RunVerdict::kSafetyViolation) +
                           f3.count(RunVerdict::kSafetyViolation) +
                           f1.agreement_failures + f2.agreement_failures;
  t.addRow({"legal fig1 (n-set agr, k=3)", bench::fmt(f1.runs),
            f1.histogram(),
            bench::fmt(f1.count(RunVerdict::kSafetyViolation) +
                       f1.agreement_failures),
            bench::passFail(f1.count(RunVerdict::kSafetyViolation) == 0 &&
                            f1.count(RunVerdict::kAxiomViolation) == 0 &&
                            f1.agreement_failures == 0 && f1.errors == 0)});
  t.addRow({"legal fig2 (f-res, k=2)", bench::fmt(f2.runs), f2.histogram(),
            bench::fmt(f2.count(RunVerdict::kSafetyViolation) +
                       f2.agreement_failures),
            bench::passFail(f2.count(RunVerdict::kSafetyViolation) == 0 &&
                            f2.count(RunVerdict::kAxiomViolation) == 0 &&
                            f2.agreement_failures == 0 && f2.errors == 0)});
  t.addRow({"legal fig3 (extraction)", bench::fmt(f3.runs), f3.histogram(),
            bench::fmt(f3.count(RunVerdict::kSafetyViolation)),
            bench::passFail(f3.count(RunVerdict::kBudgetExhausted) ==
                            f3.runs)});
  t.addRow({"negative controls (5 kinds)", bench::fmt(neg.runs),
            "axiom_violation=" + std::to_string(neg.detected), "0",
            bench::passFail(neg.detected == neg.runs)});
  t.addRow({"replay determinism", bench::fmt(replay_pairs),
            "bit-identical=" + std::to_string(replays_ok), "-",
            bench::passFail(replays_ok == replay_pairs)});
  t.print();
  printCoverage(cover, {"fig1", "fig2", "fig3", "negative"});
  checkCoverage(cover);

  const long long total_steps = f1.total_steps + f2.total_steps +
                                f3.total_steps + neg.total_steps;
  const int total_runs =
      f1.runs + f2.runs + f3.runs + neg.runs + 2 * replay_pairs;
  std::printf(
      "legal runs: %d, safety violations: %d; negative controls: %d/%d "
      "detected (%.1f%%)\n",
      f1.runs + f2.runs + f3.runs, legal_safety, neg.detected, neg.runs,
      neg.runs > 0 ? 100.0 * neg.detected / neg.runs : 0.0);
  std::printf("wall %.2fs at jobs=%d — %d runs, %.0f steps/s\n", wall_s, jobs,
              total_runs, wall_s > 0 ? total_steps / wall_s : 0.0);
  std::printf("pool: %zu steal ops moved %zu cells; memo %zu hits / %zu "
              "misses\n",
              pool.steal_ops, pool.stolen_cells, pool.memo_hits,
              pool.memo_misses);

  if (!args.json_path.empty()) {
    bench::JsonWriter json("bench_chaos", jobs);
    json.note("mode", quick ? "quick" : "full");
    json.note("scheduler", args.steal ? "steal" : "static");
    json.note("memo", args.memo ? "on" : "off");
    json.metric("steal_ops", static_cast<double>(pool.steal_ops));
    json.metric("stolen_cells", static_cast<double>(pool.stolen_cells));
    json.metric("memo_hits", static_cast<double>(pool.memo_hits));
    json.metric("memo_misses", static_cast<double>(pool.memo_misses));
    // Per-worker shape of the soak's final batch (the campaign-wide sums
    // stay in the pool_* metrics above).
    bench::emitBatchStats(json, "last_batch", pool.last);
    json.metric("wall_s", wall_s);
    json.metric("total_runs", total_runs);
    json.metric("total_steps", static_cast<double>(total_steps));
    json.metric("steps_per_s", wall_s > 0 ? total_steps / wall_s : 0.0);
    json.metric("failures", g_failures);
    json.row("legal_fig1",
             {{"runs", static_cast<double>(f1.runs)},
              {"ok", static_cast<double>(f1.count(RunVerdict::kOk))},
              {"safety_violations",
               static_cast<double>(f1.count(RunVerdict::kSafetyViolation) +
                                   f1.agreement_failures)},
              {"steps", static_cast<double>(f1.total_steps)}});
    json.row("legal_fig2",
             {{"runs", static_cast<double>(f2.runs)},
              {"ok", static_cast<double>(f2.count(RunVerdict::kOk))},
              {"safety_violations",
               static_cast<double>(f2.count(RunVerdict::kSafetyViolation) +
                                   f2.agreement_failures)},
              {"steps", static_cast<double>(f2.total_steps)}});
    json.row("legal_fig3",
             {{"runs", static_cast<double>(f3.runs)},
              {"budget_exhausted",
               static_cast<double>(f3.count(RunVerdict::kBudgetExhausted))},
              {"steps", static_cast<double>(f3.total_steps)}});
    json.row("negative_controls",
             {{"runs", static_cast<double>(neg.runs)},
              {"detected", static_cast<double>(neg.detected)}});
    json.row("replay_determinism",
             {{"pairs", static_cast<double>(replay_pairs)},
              {"bit_identical", static_cast<double>(replays_ok)}});
    json.write(args.json_path);
  }

  if (g_failures > 0) {
    std::printf("\nchaos certification FAILED: %d finding(s)\n", g_failures);
    return 1;
  }
  std::puts("\nchaos certification passed");
  return 0;
}
