// E16: chaos certification — thousands of injector-composed runs.
//
// Three campaigns over the Fig. 1 / Fig. 2 / Fig. 3 workloads:
//   * legal:    seed-indexed compositions of legal injectors (crash
//     placement incl. kFdLeader/kOnDecide critical-step strategies,
//     bounded starvation windows, shared-memory op delay, in-axiom FD
//     glitches). Certifies that safety NEVER breaks: zero safety
//     violations, zero axiom violations, and every decided run passes
//     checkKSetAgreement. Fig. 3 runs forever by design and must end in
//     kBudgetExhausted — a structured report, never an abort.
//   * negative: illegal FD glitches driven through an FD-sampler
//     automaton (detection must not depend on whether a workload happens
//     to query its detector). Certifies 100% detection: every run ends
//     in kAxiomViolation.
//   * replay:   a sample of chaos runs is re-executed and must reproduce
//     verdict, step count and trace hash bit-for-bit.
//
// --quick shrinks the campaign for CI smoke; the full depth (>= 5,000
// legal + >= 1,000 negative runs) is the scheduled soak and the numbers
// quoted in EXPERIMENTS.md row E16.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace wfd;
using sim::ChaosConfig;
using sim::CrashInjection;
using sim::Env;
using sim::FailurePattern;
using sim::GlitchKind;
using sim::OpDelay;
using sim::RunConfig;
using sim::RunReport;
using sim::RunVerdict;
using sim::WatchdogConfig;

int g_failures = 0;

void require(bool ok, const std::string& what) {
  if (!ok) {
    std::printf("  CERTIFICATION FAILURE: %s\n", what.c_str());
    ++g_failures;
  }
}

// Seed-indexed legal injector composition (docs/CHAOS.md): every run gets
// a different mix of crash strategies, schedule bias and in-axiom FD
// noise, all derived from the run seed alone.
ChaosConfig legalChaos(std::uint64_t seed, int n_plus_1, int max_faulty,
                       ProcSet protect) {
  ChaosConfig c;
  c.seed = seed;
  c.max_faulty = max_faulty;
  c.protected_pids = protect;
  switch (seed % 3) {
    case 0: c.glitch = {GlitchKind::kNone, 0, 0}; break;
    case 1: c.glitch = {GlitchKind::kScrambleNoise, 0, seed * 31}; break;
    case 2: c.glitch = {GlitchKind::kDelayStabilization, 300, seed * 17}; break;
  }
  if (seed % 2 == 0) {
    c.crashes.push_back({CrashInjection::Strategy::kRandom, -1, 0,
                         /*horizon=*/900, /*count=*/2, seed * 7});
  }
  if (seed % 5 == 0) {
    c.crashes.push_back(
        {CrashInjection::Strategy::kFdLeader, -1, /*at=*/400, 0, 1, 0});
  }
  if (seed % 7 == 0) {
    c.crashes.push_back(
        {CrashInjection::Strategy::kOnDecide, -1, 0, 0, /*count=*/1, 0});
  }
  if (seed % 3 == 0) {
    c.starvation.push_back(
        {ProcSet{static_cast<Pid>(seed % n_plus_1)}, 150, 300});
  }
  if (seed % 2 == 1) c.op_delay = OpDelay{48, 16, seed};
  return c;
}

struct CampaignStats {
  std::map<RunVerdict, int> verdicts;
  int runs = 0;
  int agreement_failures = 0;

  void add(RunVerdict v) {
    ++runs;
    ++verdicts[v];
  }
  [[nodiscard]] int count(RunVerdict v) const {
    const auto it = verdicts.find(v);
    return it == verdicts.end() ? 0 : it->second;
  }
  [[nodiscard]] std::string histogram() const {
    std::string s;
    for (const auto& [v, n] : verdicts) {
      if (!s.empty()) s += " ";
      s += std::string(sim::runVerdictName(v)) + "=" + std::to_string(n);
    }
    return s.empty() ? "-" : s;
  }
};

// ---- Workload constructors (legality contract: stable sets pinned so
// injected crashes cannot invalidate the FD's axioms) ----

RunConfig fig1Config(std::uint64_t seed) {
  const int n_plus_1 = 4;
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = FailurePattern::withCrashes(n_plus_1, {{n_plus_1 - 1, 60}});
  cfg.fd =
      fd::makeUpsilon(*cfg.fp, ProcSet::full(n_plus_1), /*stab=*/250, seed);
  cfg.seed = seed;
  return cfg;
}

RunConfig fig2Config(std::uint64_t seed) {
  const int n_plus_1 = 5;
  const int f = 2;
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = FailurePattern::withCrashes(n_plus_1, {{n_plus_1 - 1, 80}});
  cfg.fd = fd::makeUpsilonF(*cfg.fp, f, ProcSet::full(n_plus_1),
                            /*stab=*/250, seed);
  cfg.seed = seed;
  return cfg;
}

RunConfig fig3Config(std::uint64_t seed) {
  const int n_plus_1 = 4;
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = FailurePattern::withCrashes(n_plus_1, {{3, 60}});
  cfg.fd = fd::makeOmega(*cfg.fp, /*stab=*/120, seed);
  cfg.seed = seed;
  return cfg;
}

CampaignStats legalFig1(int runs) {
  CampaignStats st;
  const auto props = std::vector<Value>{100, 101, 102, 103};
  for (int i = 0; i < runs; ++i) {
    const std::uint64_t seed = static_cast<std::uint64_t>(i) + 1;
    const RunConfig cfg = fig1Config(seed);
    const ChaosConfig chaos = legalChaos(seed, 4, /*max_faulty=*/2, {});
    const RunReport rep =
        runChaosTask(cfg, chaos, WatchdogConfig{3'000'000, 0, 3},
                     [](Env& e, Value v) {
                       return core::upsilonSetAgreement(e, v);
                     },
                     props);
    st.add(rep.verdict);
    require(rep.verdict != RunVerdict::kSafetyViolation,
            "fig1 seed " + std::to_string(seed) + ": " + rep.detail);
    require(rep.verdict != RunVerdict::kAxiomViolation,
            "fig1 seed " + std::to_string(seed) +
                " flagged a LEGAL injector: " + rep.detail);
    if (rep.verdict == RunVerdict::kOk) {
      const auto check = core::checkKSetAgreement(rep.result, 3, props);
      if (!check.ok()) {
        ++st.agreement_failures;
        require(false, "fig1 seed " + std::to_string(seed) + ": " +
                           check.violation);
      }
    }
  }
  return st;
}

CampaignStats legalFig2(int runs) {
  CampaignStats st;
  const auto props = std::vector<Value>{100, 101, 102, 103, 104};
  for (int i = 0; i < runs; ++i) {
    const std::uint64_t seed = static_cast<std::uint64_t>(i) + 1;
    const RunConfig cfg = fig2Config(seed);
    // E_2: the pre-seeded crash plus at most one injected.
    const ChaosConfig chaos = legalChaos(seed, 5, /*max_faulty=*/2, {});
    const RunReport rep =
        runChaosTask(cfg, chaos, WatchdogConfig{4'000'000, 0, 2},
                     [](Env& e, Value v) {
                       return core::upsilonFSetAgreement(e, 2, v);
                     },
                     props);
    st.add(rep.verdict);
    require(rep.verdict != RunVerdict::kSafetyViolation,
            "fig2 seed " + std::to_string(seed) + ": " + rep.detail);
    require(rep.verdict != RunVerdict::kAxiomViolation,
            "fig2 seed " + std::to_string(seed) +
                " flagged a LEGAL injector: " + rep.detail);
    if (rep.verdict == RunVerdict::kOk) {
      const auto check = core::checkKSetAgreement(rep.result, 2, props);
      if (!check.ok()) {
        ++st.agreement_failures;
        require(false, "fig2 seed " + std::to_string(seed) + ": " +
                           check.violation);
      }
    }
  }
  return st;
}

CampaignStats legalFig3(int runs) {
  CampaignStats st;
  const auto phi = core::phiOmegaK(4);
  for (int i = 0; i < runs; ++i) {
    const std::uint64_t seed = static_cast<std::uint64_t>(i) + 1;
    const RunConfig cfg = fig3Config(seed);
    // The extraction's Omega leader (p1, the lowest-id correct process)
    // anchors the detector's axioms: protect it from crash injection.
    const ChaosConfig chaos =
        legalChaos(seed, 4, /*max_faulty=*/2, ProcSet{0});
    const RunReport rep = runChaosTask(
        cfg, chaos, WatchdogConfig{/*step_budget=*/15'000, 0, 0},
        [phi](Env& e, Value) { return core::extractUpsilonF(e, phi); },
        std::vector<Value>(4, 0));
    st.add(rep.verdict);
    // Runs-forever workload: the ONLY acceptable outcome is a structured
    // budget cutoff — anything else is a certification failure.
    require(rep.verdict == RunVerdict::kBudgetExhausted,
            "fig3 seed " + std::to_string(seed) + ": " +
                sim::runVerdictName(rep.verdict) + " " + rep.detail);
  }
  return st;
}

// ---- Negative controls ----

sim::AlgoFn fdSampler() {
  return [](Env& e, Value) -> sim::Coro<sim::Unit> {
    for (int i = 0; i < 60; ++i) (void)co_await e.queryFd();
    co_return sim::Unit{};
  };
}

struct NegativeStats {
  int runs = 0;
  int detected = 0;
};

NegativeStats negativeControls(int runs_per_kind) {
  NegativeStats st;
  const auto props4 = std::vector<Value>{0, 0, 0, 0};
  const GlitchKind upsilon_kinds[] = {
      GlitchKind::kEmptyAnswer, GlitchKind::kUndersizedAnswer,
      GlitchKind::kPostStabFlap, GlitchKind::kStabToCorrect};
  for (const GlitchKind kind : upsilon_kinds) {
    for (int i = 0; i < runs_per_kind; ++i) {
      const std::uint64_t seed = static_cast<std::uint64_t>(i) + 1;
      RunConfig cfg;
      cfg.n_plus_1 = 4;
      cfg.fp = FailurePattern::failureFree(4);
      cfg.fd = fd::makeUpsilonF(*cfg.fp, 2, /*stab=*/0, seed);
      cfg.seed = seed * 3 + 1;
      ChaosConfig chaos;
      chaos.glitch = {kind, 0, seed};
      const RunReport rep = runChaosTask(
          cfg, chaos, WatchdogConfig{200'000, 0, 0}, fdSampler(), props4);
      ++st.runs;
      if (rep.verdict == RunVerdict::kAxiomViolation) {
        ++st.detected;
      } else {
        require(false, std::string("negative control ") +
                           sim::glitchName(kind) + " seed " +
                           std::to_string(seed) + " escaped: " +
                           sim::runVerdictName(rep.verdict));
      }
    }
  }
  // Omega^k end-condition control needs faulty processes to stabilize on.
  for (int i = 0; i < runs_per_kind; ++i) {
    const std::uint64_t seed = static_cast<std::uint64_t>(i) + 1;
    RunConfig cfg;
    cfg.n_plus_1 = 4;
    cfg.fp = FailurePattern::withCrashes(4, {{2, 10}, {3, 10}});
    cfg.fd = fd::makeOmegaK(*cfg.fp, 2, /*stab=*/0, seed);
    cfg.seed = seed * 5 + 2;
    ChaosConfig chaos;
    chaos.glitch = {GlitchKind::kStabExcludeCorrect, 0, seed};
    const RunReport rep = runChaosTask(
        cfg, chaos, WatchdogConfig{200'000, 0, 0}, fdSampler(), props4);
    ++st.runs;
    if (rep.verdict == RunVerdict::kAxiomViolation) {
      ++st.detected;
    } else {
      require(false, "negative control stab-exclude-correct seed " +
                         std::to_string(seed) + " escaped: " +
                         sim::runVerdictName(rep.verdict));
    }
  }
  return st;
}

// ---- Replay determinism ----

int replayDeterminism(int pairs) {
  int ok = 0;
  const auto props = std::vector<Value>{100, 101, 102, 103};
  for (int i = 0; i < pairs; ++i) {
    const std::uint64_t seed = static_cast<std::uint64_t>(i) * 997 + 13;
    const ChaosConfig chaos = legalChaos(seed, 4, 2, {});
    const WatchdogConfig wd{3'000'000, 0, 3};
    const auto algo = [](Env& e, Value v) {
      return core::upsilonSetAgreement(e, v);
    };
    const RunReport a = runChaosTask(fig1Config(seed), chaos, wd, algo, props);
    const RunReport b = runChaosTask(fig1Config(seed), chaos, wd, algo, props);
    const bool same = a.verdict == b.verdict && a.steps == b.steps &&
                      a.result.trace().hash64() == b.result.trace().hash64();
    if (same) {
      ++ok;
    } else {
      require(false, "replay divergence at seed " + std::to_string(seed));
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  // Full depth: >= 5,000 legal runs + >= 1,000 negative controls (the
  // numbers EXPERIMENTS.md row E16 quotes). --quick is the CI smoke.
  const int fig1_runs = quick ? 160 : 2200;
  const int fig2_runs = quick ? 120 : 1800;
  const int fig3_runs = quick ? 60 : 1000;
  const int neg_per_kind = quick ? 12 : 200;
  const int replay_pairs = quick ? 6 : 25;

  bench::banner(quick ? "chaos certification (--quick)"
                      : "chaos certification (full depth)");
  const CampaignStats f1 = legalFig1(fig1_runs);
  const CampaignStats f2 = legalFig2(fig2_runs);
  const CampaignStats f3 = legalFig3(fig3_runs);
  const NegativeStats neg = negativeControls(neg_per_kind);
  const int replays_ok = replayDeterminism(replay_pairs);

  bench::Table t({"campaign", "runs", "verdicts", "safety viol",
                  "certified"});
  const int legal_safety = f1.count(RunVerdict::kSafetyViolation) +
                           f2.count(RunVerdict::kSafetyViolation) +
                           f3.count(RunVerdict::kSafetyViolation) +
                           f1.agreement_failures + f2.agreement_failures;
  t.addRow({"legal fig1 (n-set agr, k=3)", bench::fmt(f1.runs),
            f1.histogram(),
            bench::fmt(f1.count(RunVerdict::kSafetyViolation) +
                       f1.agreement_failures),
            bench::passFail(f1.count(RunVerdict::kSafetyViolation) == 0 &&
                            f1.count(RunVerdict::kAxiomViolation) == 0 &&
                            f1.agreement_failures == 0)});
  t.addRow({"legal fig2 (f-res, k=2)", bench::fmt(f2.runs), f2.histogram(),
            bench::fmt(f2.count(RunVerdict::kSafetyViolation) +
                       f2.agreement_failures),
            bench::passFail(f2.count(RunVerdict::kSafetyViolation) == 0 &&
                            f2.count(RunVerdict::kAxiomViolation) == 0 &&
                            f2.agreement_failures == 0)});
  t.addRow({"legal fig3 (extraction)", bench::fmt(f3.runs), f3.histogram(),
            bench::fmt(f3.count(RunVerdict::kSafetyViolation)),
            bench::passFail(f3.count(RunVerdict::kBudgetExhausted) ==
                            f3.runs)});
  t.addRow({"negative controls (5 kinds)", bench::fmt(neg.runs),
            "axiom_violation=" + std::to_string(neg.detected), "0",
            bench::passFail(neg.detected == neg.runs)});
  t.addRow({"replay determinism", bench::fmt(replay_pairs),
            "bit-identical=" + std::to_string(replays_ok), "-",
            bench::passFail(replays_ok == replay_pairs)});
  t.print();
  std::printf(
      "legal runs: %d, safety violations: %d; negative controls: %d/%d "
      "detected (%.1f%%)\n",
      f1.runs + f2.runs + f3.runs, legal_safety, neg.detected, neg.runs,
      neg.runs > 0 ? 100.0 * neg.detected / neg.runs : 0.0);
  if (g_failures > 0) {
    std::printf("\nchaos certification FAILED: %d finding(s)\n", g_failures);
    return 1;
  }
  std::puts("\nchaos certification passed");
  return 0;
}
