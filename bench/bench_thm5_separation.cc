// Experiment E6 (paper Theorem 5): Upsilon^f is strictly weaker than
// Omega^f in E_f for 2 <= f <= n.
//
// Easy direction: Omega^f -> Upsilon^f stabilizes (complementation).
// Hard direction: the generalized solo-chase (the Theorem 5 proof runs
// only the processes outside the candidate's claimed L-set; our chase is
// its f = n specialization, which the theorem subsumes for the shipped
// candidates) plus an L-set exposure run: a candidate freezing on a set
// that a legal crash pattern makes all-faulty.
#include "bench_util.h"

namespace wfd {
namespace {

using bench::Table;
using sim::Env;
using sim::FailurePattern;

void easyDirection() {
  bench::banner("E6a — easy direction: Omega^f -> Upsilon^f across f");
  Table t({"n+1", "f", "stab(Omega^f)", "emulation last change", "axioms"});
  const int n_plus_1 = 6;
  for (int f = 2; f <= n_plus_1 - 1; ++f) {
    for (const Time stab : {150L, 1500L}) {
      bool ok = true;
      std::vector<Time> last;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto fp = FailurePattern::random(n_plus_1, f, 50, seed * 11);
        sim::RunConfig cfg;
        cfg.n_plus_1 = n_plus_1;
        cfg.fp = fp;
        cfg.fd = fd::makeOmegaK(fp, f, stab, seed);
        cfg.seed = seed;
        cfg.max_steps = stab * 3 + 30'000;
        const auto rr = sim::runTask(
            cfg, [](Env& e, Value) { return core::omegaKToUpsilonF(e); },
            std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
        const auto rep = core::checkEmulatedUpsilonF(rr, f);
        ok = ok && rep.ok();
        last.push_back(rep.last_change);
      }
      t.addRow({bench::fmt(n_plus_1), bench::fmt(f), bench::fmt(stab),
                bench::fmt(bench::median(std::move(last))),
                bench::passFail(ok)});
    }
  }
  t.print();
}

void hardDirection() {
  bench::banner(
      "E6b — hard direction: the Theorem 5 chase vs the adaptive candidate");
  Table t({"n+1", "horizon", "forced switches", "last switch", "verdict"});
  const auto cand = [](Env& e, Value) {
    return core::candidateLowestHeartbeat(e);
  };
  for (int n_plus_1 : {4, 5, 7}) {
    int prev = 0;
    for (const Time horizon : {40'000L, 120'000L}) {
      const auto s = core::soloChase(cand, n_plus_1, horizon);
      const bool growing = s.switches > prev;
      prev = s.switches;
      t.addRow({bench::fmt(n_plus_1), bench::fmt(horizon),
                bench::fmt(s.switches), bench::fmt(s.last_switch_time),
                growing ? "never stabilizes" : "STABILIZED?"});
    }
  }
  t.print();
}

}  // namespace
}  // namespace wfd

int main() {
  using namespace wfd;
  easyDirection();
  hardDirection();
  std::puts("");
  std::puts("Theorem 5 reproduced: Omega^f -> Upsilon^f stabilizes for every");
  std::puts("f, while extracting Omega^f back from Upsilon^f fails (the");
  std::puts("chase forces unbounded switching for 2 <= f <= n).");
  return 0;
}
