// E17: batch scheduler + ReportCache characterization (BENCH_batch.json).
//
// A deliberately heavy-tailed campaign — a cluster of Fig. 3 extraction
// cells, each ~100x the median Fig. 1 chaos cell, packed at the FRONT of
// the submission order — measures the two scaling features head to head:
//
//   * static sharding (--no-steal): the contiguous-block distribution
//     lands the whole heavy cluster on worker 0, so the batch runs at
//     worker 0's pace while the rest idle;
//   * work stealing (the default): drained workers take the back half of
//     a loaded victim's block, so the tail spreads across the pool.
//
// Two numbers come out of the comparison, both best-of-N:
//   * wall-clock speedup — what stealing buys on this machine. Needs
//     free cores to show anything: on a single-core host the pool is
//     CPU-bound either way and the ratio sits at ~1.
//   * step-makespan speedup — max per-worker simulation steps, static
//     over steal: the schedule's critical path, i.e. the wall ratio on
//     >= jobs free cores. Deterministic and hardware-independent.
//
// The memo phase then reruns the identical campaign against a warm
// ReportCache: every cell is answered from the cache, and the warm/cold
// wall ratio is the memoization payoff. All three phases certify their
// results against the serial jobs=1 pass cell by cell — a scheduler or
// cache that changed any result would fail here before any speedup is
// worth reporting.
#include "bench_util.h"

namespace wfd {
namespace {

using sim::BatchCell;
using sim::BatchStats;
using sim::CellResult;
using sim::CrashInjection;
using sim::Env;
using sim::FailurePattern;
using sim::GlitchKind;
using sim::WatchdogConfig;

int g_failures = 0;

void require(bool ok, const std::string& what) {
  if (!ok) {
    std::printf("  FAILURE: %s\n", what.c_str());
    ++g_failures;
  }
}

// Light cell: one Fig. 1 chaos run, a few thousand steps.
BatchCell lightCell(std::uint64_t seed) {
  const int n_plus_1 = 4;
  BatchCell cell;
  cell.cfg.n_plus_1 = n_plus_1;
  cell.cfg.fp = FailurePattern::withCrashes(n_plus_1, {{n_plus_1 - 1, 60}});
  cell.cfg.fd =
      fd::makeUpsilon(*cell.cfg.fp, ProcSet::full(n_plus_1), /*stab=*/250,
                      seed);
  cell.cfg.seed = seed;
  sim::ChaosConfig chaos;
  chaos.seed = seed;
  chaos.max_faulty = 2;
  chaos.glitch = {GlitchKind::kScrambleNoise, 0, seed * 31};
  chaos.crashes.push_back({CrashInjection::Strategy::kRandom, -1, 0,
                           /*horizon=*/900, /*count=*/1, seed * 7});
  cell.chaos = chaos;
  cell.watchdog = WatchdogConfig{3'000'000, 0, 3};
  cell.algo = [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); };
  cell.proposals = {100, 101, 102, 103};
  cell.memo_family = "bb-light";
  return cell;
}

// Heavy cell: a watched Fig. 3 extraction that runs its whole budget —
// deterministic weight, ~100x the light cell's median steps.
BatchCell heavyCell(std::uint64_t seed, Time budget) {
  const int n_plus_1 = 4;
  BatchCell cell;
  cell.cfg.n_plus_1 = n_plus_1;
  cell.cfg.fp = FailurePattern::withCrashes(n_plus_1, {{3, 60}});
  cell.cfg.fd = fd::makeOmega(*cell.cfg.fp, /*stab=*/120, seed);
  cell.cfg.seed = seed;
  cell.cfg.max_steps = budget + 10;
  const auto phi = core::phiOmegaK(n_plus_1);
  cell.algo = [phi](Env& e, Value) { return core::extractUpsilonF(e, phi); };
  cell.proposals = std::vector<Value>(4, 0);
  cell.watchdog = WatchdogConfig{budget, 0, 0};
  cell.memo_family = "bb-heavy";
  return cell;
}

bool sameResult(const CellResult& x, const CellResult& y) {
  return x.index == y.index && x.verdict == y.verdict && x.error == y.error &&
         x.steps == y.steps && x.decisions == y.decisions &&
         x.trace_hash == y.trace_hash;
}

}  // namespace
}  // namespace wfd

int main(int argc, char** argv) {
  using namespace wfd;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const int jobs = args.jobs > 0 ? args.jobs : std::max(4, sim::resolveJobs(0));
  const int reps = args.quick ? 3 : 5;
  const int heavy_cells = args.quick ? 6 : 16;
  const int light_cells = args.quick ? 90 : 400;
  const Time heavy_budget = args.quick ? 60'000 : 120'000;

  std::printf("\n=== E17 — batch scheduler + ReportCache (jobs=%d, "
              "best-of-%d, %d heavy + %d light cells) ===\n",
              jobs, reps, heavy_cells, light_cells);

  // Heavy cluster FIRST: the contiguous-block distribution gives the
  // whole cluster to worker 0, the adversarial case for static sharding.
  std::vector<BatchCell> cells;
  cells.reserve(static_cast<std::size_t>(heavy_cells + light_cells));
  for (int i = 0; i < heavy_cells; ++i) {
    cells.push_back(heavyCell(static_cast<std::uint64_t>(i) + 1, heavy_budget));
  }
  for (int i = 0; i < light_cells; ++i) {
    cells.push_back(lightCell(static_cast<std::uint64_t>(i) + 1));
  }

  // Ground truth: the serial pass every mode must reproduce exactly.
  auto optionsFor = [&](int run_jobs, bool steal,
                        sim::ReportCache* cache = nullptr) {
    sim::BatchOptions o;
    o.jobs = run_jobs;
    o.steal = steal;
    o.memo = cache;
    return o;
  };
  const sim::BatchRunner serial(optionsFor(1, true));
  const auto truth = serial.run(cells);

  auto certify = [&](const std::vector<CellResult>& got, const char* mode) {
    bool same = got.size() == truth.size();
    for (std::size_t i = 0; same && i < truth.size(); ++i) {
      same = sameResult(truth[i], got[i]);
    }
    require(same, std::string(mode) + " results differ from the serial pass");
  };

  auto bestOf = [&](const sim::BatchOptions& opts, const char* mode,
                    BatchStats& best_stats) {
    double best = -1;
    const sim::BatchRunner runner(opts);
    for (int r = 0; r < reps; ++r) {
      BatchStats stats;
      const auto results = runner.run(cells, &stats);
      certify(results, mode);
      if (best < 0 || stats.wall_s < best) {
        best = stats.wall_s;
        best_stats = stats;
      }
    }
    return best;
  };

  BatchStats static_stats;
  BatchStats steal_stats;
  const double static_s =
      bestOf(optionsFor(jobs, /*steal=*/false), "static", static_stats);
  const double steal_s =
      bestOf(optionsFor(jobs, /*steal=*/true), "steal", steal_stats);
  const double wall_speedup = steal_s > 0 ? static_s / steal_s : 0;
  const double makespan_speedup =
      steal_stats.stepMakespan() > 0
          ? static_cast<double>(static_stats.stepMakespan()) /
                static_cast<double>(steal_stats.stepMakespan())
          : 0;

  // Memo phase: one cold pass fills the cache, then best-of-N warm
  // reruns of the identical campaign. Stealing stays on; every cell is
  // digestible by construction, so the warm passes are pure lookups —
  // unless the WFD_AUDIT latch is on, which correctly makes every cell
  // bypass the memo (an audited run must re-execute, not replay).
  std::size_t cacheable = 0;
  for (const auto& cell : cells) {
    cacheable += sim::cellKey(cell).has_value() ? 1u : 0u;
  }
  if (cacheable == 0) {
    std::printf("note: no memo-eligible cells (WFD_AUDIT latch active?) — "
                "the warm phase measures audited re-execution, not hits\n");
  }
  sim::ReportCache cache;
  const sim::BatchRunner memo_runner(optionsFor(jobs, /*steal=*/true, &cache));
  BatchStats cold_stats;
  certify(memo_runner.run(cells, &cold_stats), "memo-cold");
  double warm_s = -1;
  BatchStats warm_stats;
  for (int r = 0; r < reps; ++r) {
    BatchStats stats;
    certify(memo_runner.run(cells, &stats), "memo-warm");
    if (warm_s < 0 || stats.wall_s < warm_s) {
      warm_s = stats.wall_s;
      warm_stats = stats;
    }
  }
  const double memo_speedup = warm_s > 0 ? steal_s / warm_s : 0;
  const double hit_rate =
      warm_stats.memo_hits + warm_stats.memo_misses > 0
          ? static_cast<double>(warm_stats.memo_hits) /
                static_cast<double>(warm_stats.memo_hits +
                                    warm_stats.memo_misses)
          : 0;
  require(warm_stats.memo_hits == cacheable,
          "warm pass answered every cacheable cell from the memo (" +
              std::to_string(warm_stats.memo_hits) + "/" +
              std::to_string(cacheable) + ")");

  bench::Table t({"mode", "wall s", "step makespan", "steal ops",
                  "stolen cells", "memo hits", "utilization"});
  auto statsRow = [&](const char* mode, double wall, const BatchStats& s) {
    t.addRow({mode, bench::fmt(wall),
              std::to_string(s.stepMakespan()),
              bench::fmt(static_cast<int>(s.steal_ops)),
              bench::fmt(static_cast<int>(s.stolen_cells)),
              bench::fmt(static_cast<int>(s.memo_hits)),
              bench::fmt(s.utilization())});
  };
  statsRow("static shards", static_s, static_stats);
  statsRow("steal", steal_s, steal_stats);
  statsRow("memo warm", warm_s, warm_stats);
  t.print();
  std::printf("stealing vs static: %.2fx wall (this host), %.2fx step "
              "makespan (>= %d free cores)\n",
              wall_speedup, makespan_speedup, jobs);
  std::printf("warm memo vs fresh steal run: %.2fx wall, hit rate %.2f\n",
              memo_speedup, hit_rate);

  const std::string json_path =
      args.json_path.empty() ? "BENCH_batch.json" : args.json_path;
  bench::JsonWriter json("bench_batch", jobs);
  json.note("mode", args.quick ? "quick" : "full");
  json.metric("reps_best_of", reps);
  json.metric("heavy_cells", heavy_cells);
  json.metric("light_cells", light_cells);
  json.metric("wall_static_s", static_s);
  json.metric("wall_steal_s", steal_s);
  json.metric("wall_memo_warm_s", warm_s);
  json.metric("steal_speedup_wall", wall_speedup);
  json.metric("steal_speedup_makespan", makespan_speedup);
  json.metric("memo_speedup_wall", memo_speedup);
  json.metric("memo_hit_rate", hit_rate);
  json.metric("memo_eligible_cells", static_cast<double>(cacheable));
  json.metric("steal_ops", static_cast<double>(steal_stats.steal_ops));
  json.metric("stolen_cells", static_cast<double>(steal_stats.stolen_cells));
  json.metric("failures", g_failures);
  for (std::size_t w = 0; w < steal_stats.executed.size(); ++w) {
    json.row("steal_worker_" + std::to_string(w),
             {{"executed", static_cast<double>(steal_stats.executed[w])},
              {"steps", static_cast<double>(steal_stats.steps_run[w])},
              {"busy_s", steal_stats.busy_s[w]}});
  }
  for (std::size_t w = 0; w < static_stats.executed.size(); ++w) {
    json.row("static_worker_" + std::to_string(w),
             {{"executed", static_cast<double>(static_stats.executed[w])},
              {"steps", static_cast<double>(static_stats.steps_run[w])},
              {"busy_s", static_stats.busy_s[w]}});
  }
  json.write(json_path);

  if (g_failures > 0) {
    std::printf("\nbench_batch FAILED: %d finding(s)\n", g_failures);
    return 1;
  }
  std::puts("\nbench_batch passed: all modes reproduce the serial results");
  return 0;
}
