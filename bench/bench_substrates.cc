// Experiment E11 — substrate microbenchmarks (google-benchmark):
//   * simulator step throughput (coroutine scheduling + register ops),
//   * atomic snapshot cost, native vs the Afek et al. register
//     construction (the price of discharging the paper's "snapshots are
//     implementable from registers" assumption),
//   * one full k-converge invocation across system sizes.
#include <benchmark/benchmark.h>

#include "wfd.h"

namespace wfd {
namespace {

using sim::Coro;
using sim::Env;
using sim::RunConfig;
using sim::SnapshotFlavor;
using sim::Unit;

Coro<Unit> registerPingPong(Env& env, int iters) {
  const sim::ObjId r = env.reg(sim::ObjKey{"bench.r", env.me()});
  for (int i = 0; i < iters; ++i) {
    co_await env.write(r, RegVal(static_cast<Value>(i)));
    co_await env.read(r);
  }
  co_return Unit{};
}

void BM_SimulatorSteps(benchmark::State& state) {
  const int n_plus_1 = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    const auto rr = sim::runTask(
        cfg, [](Env& e, Value) { return registerPingPong(e, 500); },
        std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
    benchmark::DoNotOptimize(rr.steps);
    state.counters["steps"] = static_cast<double>(rr.steps);
  }
  state.SetItemsProcessed(state.iterations() * 1000 * n_plus_1);
}
BENCHMARK(BM_SimulatorSteps)->Arg(2)->Arg(4)->Arg(8);

Coro<Unit> snapshotChurn(Env& env, SnapshotFlavor flavor, int iters) {
  const auto h = mem::makeSnapshot(sim::ObjKey{"bench.snap"}, env.nProcs(),
                                   flavor);
  for (int i = 0; i < iters; ++i) {
    co_await mem::snapshotUpdate(env, h, env.me(),
                                 RegVal(static_cast<Value>(i)));
    const auto view = co_await mem::snapshotScan(env, h);
    benchmark::DoNotOptimize(view.size());
  }
  co_return Unit{};
}

void BM_Snapshot(benchmark::State& state) {
  const int n_plus_1 = static_cast<int>(state.range(0));
  const auto flavor = static_cast<SnapshotFlavor>(state.range(1));
  Time steps = 0;
  for (auto _ : state) {
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.flavor = flavor;
    const auto rr = sim::runTask(
        cfg,
        [flavor](Env& e, Value) { return snapshotChurn(e, flavor, 100); },
        std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
    steps = rr.steps;
    benchmark::DoNotOptimize(rr.steps);
  }
  // Simulated atomic steps per update+scan pair: the model-cost gap
  // between the base object and the register construction.
  state.counters["sim_steps_per_pair"] =
      static_cast<double>(steps) / (100.0 * n_plus_1);
}
BENCHMARK(BM_Snapshot)
    ->ArgsProduct({{2, 4, 8},
                   {static_cast<long>(SnapshotFlavor::kNative),
                    static_cast<long>(SnapshotFlavor::kAfek)}});

void BM_KConverge(benchmark::State& state) {
  const int n_plus_1 = static_cast<int>(state.range(0));
  const auto flavor = static_cast<SnapshotFlavor>(state.range(1));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.flavor = flavor;
    cfg.seed = ++seed;
    std::vector<Value> props(static_cast<std::size_t>(n_plus_1));
    for (int i = 0; i < n_plus_1; ++i) props[static_cast<std::size_t>(i)] = i;
    const auto rr = sim::runTask(
        cfg,
        [n_plus_1](Env& e, Value v) -> Coro<Unit> {
          const auto p = co_await core::kConverge(
              e, sim::ObjKey{"bench.conv"}, n_plus_1 - 1, v + 1);
          benchmark::DoNotOptimize(p.committed);
          co_return Unit{};
        },
        props);
    benchmark::DoNotOptimize(rr.steps);
  }
}
BENCHMARK(BM_KConverge)
    ->ArgsProduct({{2, 4, 8},
                   {static_cast<long>(SnapshotFlavor::kNative),
                    static_cast<long>(SnapshotFlavor::kAfek)}});

void BM_Fig1EndToEnd(benchmark::State& state) {
  const int n_plus_1 = static_cast<int>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto fp = sim::FailurePattern::failureFree(n_plus_1);
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = fd::makeUpsilon(fp, 100, ++seed);
    cfg.seed = seed;
    std::vector<Value> props(static_cast<std::size_t>(n_plus_1));
    for (int i = 0; i < n_plus_1; ++i) props[static_cast<std::size_t>(i)] = i + 1;
    const auto rr = sim::runTask(
        cfg, [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); },
        props);
    benchmark::DoNotOptimize(rr.decisions.size());
  }
}
BENCHMARK(BM_Fig1EndToEnd)->Arg(3)->Arg(5)->Arg(8);

}  // namespace
}  // namespace wfd

BENCHMARK_MAIN();
