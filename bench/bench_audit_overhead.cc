// Audit overhead: steps/s with the step auditor off vs attached.
//
// EXPERIMENTS.md quotes the simulator's raw step throughput; the step
// auditor (sim/step_audit.h) hooks every scheduler resume, every
// World::execute, and every object-table access, so its cost must be
// measured before WFD_AUDIT can be recommended as an always-on CI
// setting. The workload is a tight register ping-pong: the highest
// op-per-step density the model allows, i.e. the auditor's worst case.
#include <chrono>
#include <cstdio>

#include "bench_util.h"

namespace {

using namespace wfd;
using sim::AuditMode;
using sim::Env;
using sim::RunConfig;

sim::Coro<sim::Unit> pingPong(Env& env, int iters) {
  const ObjId mine = env.reg(sim::ObjKey{"pp", env.me()});
  const ObjId peer =
      env.reg(sim::ObjKey{"pp", (env.me() + 1) % env.nProcs()});
  for (int i = 0; i < iters; ++i) {
    co_await env.write(mine, RegVal(Value{i}));
    co_await env.read(peer);
  }
  co_return sim::Unit{};
}

struct Sample {
  Time steps = 0;
  double seconds = 0;
  [[nodiscard]] double stepsPerSec() const {
    return seconds > 0 ? static_cast<double>(steps) / seconds : 0;
  }
};

Sample timedRun(int n_plus_1, int iters, std::optional<AuditMode> audit) {
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.seed = 99;
  cfg.max_steps = 100'000'000;
  cfg.audit = audit;
  const auto algo = [iters](Env& e, Value) { return pingPong(e, iters); };
  const std::vector<Value> props(static_cast<std::size_t>(n_plus_1), 0);
  // Wall-clock overhead IS the measurement here; the timed section never
  // feeds the schedule or the trace.
  const auto t0 = std::chrono::steady_clock::now();  // model-lint-allow
  const auto rr = sim::runTask(cfg, algo, props);
  const auto t1 = std::chrono::steady_clock::now();  // model-lint-allow
  Sample s;
  s.steps = rr.steps;
  s.seconds = std::chrono::duration<double>(t1 - t0).count();
  if (audit.has_value() &&
      (rr.audit() == nullptr || !rr.audit()->clean())) {
    std::puts("ERROR: audited bench run reported violations");
  }
  return s;
}

Sample best(int n_plus_1, int iters, std::optional<AuditMode> audit,
            int reps) {
  Sample b;
  for (int r = 0; r < reps; ++r) {
    const Sample s = timedRun(n_plus_1, iters, audit);
    if (b.seconds == 0 || s.stepsPerSec() > b.stepsPerSec()) b = s;
  }
  return b;
}

std::string mps(double steps_per_sec) {
  return bench::fmt(steps_per_sec / 1e6) + "M";
}

}  // namespace

int main() {
  bench::banner("step auditor overhead (register ping-pong workload)");
  bench::Table t({"n+1", "steps", "off steps/s", "collect steps/s",
                  "throw steps/s", "collect overhead"});
  const int kReps = 3;
  for (const int n_plus_1 : {2, 4, 8}) {
    const int iters = 400'000 / n_plus_1;  // ~800k steps per run
    const Sample off = best(n_plus_1, iters, std::nullopt, kReps);
    const Sample col = best(n_plus_1, iters, AuditMode::kCollect, kReps);
    const Sample thr = best(n_plus_1, iters, AuditMode::kThrow, kReps);
    const double overhead =
        off.stepsPerSec() > 0
            ? (off.stepsPerSec() / col.stepsPerSec() - 1.0) * 100.0
            : 0;
    t.addRow({bench::fmt(n_plus_1), bench::fmt(off.steps),
              mps(off.stepsPerSec()), mps(col.stepsPerSec()),
              mps(thr.stepsPerSec()), bench::fmt(overhead) + "%"});
  }
  t.print();
  std::puts("overhead = off/collect - 1; best of 3 runs per cell");
  return 0;
}
