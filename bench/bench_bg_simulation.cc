// Experiment E15 (extension; paper's [2] machinery): BG simulation.
// f+1 wait-free simulators execute an m-process snapshot-model program;
// the table certifies the two defining properties across configurations:
// identical reconstruction by all simulators, and progress of at least
// m - f simulated processes under simulator crashes.
#include "bench_util.h"
#include "core/bg_simulation.h"

namespace wfd {
namespace {

using bench::Table;
using core::BgConfig;
using core::bgSimulator;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;

struct Outcome {
  bool identical = true;     // all live simulators agree on the run
  int min_progress = 1 << 20;  // fewest simulated decisions at a live sim
  Time median_steps = 0;
  int runs_with_block = 0;   // crash blocked >= 1 simulated process
};

Outcome sweep(int simulators, int simulated, int quorum, bool crash_one,
              int seeds) {
  Outcome out;
  std::vector<Time> steps;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds);
       ++seed) {
    BgConfig bg;
    bg.simulators = simulators;
    bg.simulated = simulated;
    bg.max_iterations = 3000;
    for (int j = 0; j < simulated; ++j) {
      bg.inputs.push_back(100 + (j * 7) % simulated);
    }
    const auto prog = core::minOfQuorumProgram(quorum);
    RunConfig cfg;
    cfg.n_plus_1 = simulators;
    cfg.seed = seed;
    cfg.max_steps = 3'000'000;
    if (crash_one) {
      cfg.fp = FailurePattern::withCrashes(
          simulators, {{simulators - 1, static_cast<Time>(3 + seed * 5)}});
    }
    const auto rr = sim::runTask(
        cfg, [&](Env& e, Value) { return bgSimulator(e, bg, prog); },
        std::vector<Value>(static_cast<std::size_t>(simulators), 0));
    steps.push_back(rr.steps);

    std::map<Pid, std::map<int, Value>> per_sim;
    for (const auto& e : rr.trace().events()) {
      if (e.kind != sim::EventKind::kNote ||
          e.label.rfind("bg.decide.", 0) != 0) {
        continue;
      }
      per_sim[e.pid][std::stoi(e.label.substr(10))] = e.value.asInt();
    }
    const ProcSet correct = rr.world->pattern().correct();
    std::map<int, Value> reference;
    bool first = true;
    for (Pid p : correct.members()) {
      const auto& mine = per_sim[p];
      out.min_progress =
          std::min(out.min_progress, static_cast<int>(mine.size()));
      if (static_cast<int>(mine.size()) < simulated) ++out.runs_with_block;
      if (first) {
        reference = mine;
        first = false;
      } else {
        // Agreement on the common prefix of simulated decisions.
        for (const auto& [j, v] : mine) {
          if (reference.contains(j) && reference.at(j) != v) {
            out.identical = false;
          }
        }
      }
    }
  }
  out.median_steps = bench::median(std::move(steps));
  return out;
}

}  // namespace
}  // namespace wfd

int main() {
  using namespace wfd;
  bench::banner(
      "E15 — BG simulation [2]: f+1 wait-free simulators run an m-process "
      "snapshot-model program (min-of-quorum), 15 seeds per row");
  Table t({"simulators (f+1)", "simulated m", "quorum (m-f)", "crash",
           "min progress (>= m-f)", "identical runs", "median steps",
           "verdict"});
  struct Row {
    int sims, m, quorum;
    bool crash;
  };
  const Row rows[] = {
      {2, 3, 2, false}, {2, 3, 2, true},  {2, 4, 3, false},
      {2, 4, 3, true},  {3, 4, 2, false}, {3, 4, 2, true},
      {3, 6, 4, false}, {4, 6, 3, true},
  };
  for (const auto& r : rows) {
    const auto o = sweep(r.sims, r.m, r.quorum, r.crash, 15);
    const bool ok = o.identical && o.min_progress >= r.quorum;
    t.addRow({bench::fmt(r.sims), bench::fmt(r.m), bench::fmt(r.quorum),
              r.crash ? "1 simulator" : "none", bench::fmt(o.min_progress),
              o.identical ? "yes" : "NO", bench::fmt(o.median_steps),
              ok ? "PASS" : "FAIL"});
  }
  t.print();
  std::puts(
      "The reduction behind the paper's Sect. 5.3 impossibility: an"
      " f-resilient m-process snapshot-model execution emerges from f+1");
  std::puts(
      "wait-free simulators; every live simulator reconstructs the same"
      " simulated run, and at most f simulated processes can be blocked.");
  return 0;
}
