// Experiment E2/E7 (paper Fig. 2, Theorem 6): regenerate the behaviour of
// the Upsilon^f-based f-resilient f-set-agreement protocol across the
// whole (n, f) grid, both snapshot flavors, and adversarial noise.
#include "bench_util.h"

namespace wfd {
namespace {

using bench::Table;
using core::checkKSetAgreement;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::SnapshotFlavor;

constexpr int kSeeds = 20;

struct Agg {
  Time median_steps = 0;
  int worst_distinct = 0;
  bool all_ok = true;
};

Agg sweep(int n_plus_1, int f, Time stab, Time noise_hold,
          SnapshotFlavor flavor) {
  std::vector<Time> steps;
  Agg agg;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto fp =
        FailurePattern::random(n_plus_1, f, stab + 300, seed * 53 + 29);
    std::vector<Value> props(static_cast<std::size_t>(n_plus_1));
    for (int i = 0; i < n_plus_1; ++i) props[static_cast<std::size_t>(i)] = 100 + i;
    fd::UpsilonFd::Params p;
    p.stable_set = fd::UpsilonFd::defaultStableSet(fp, f);
    p.stab_time = stab;
    p.noise_seed = seed;
    p.noise_hold = noise_hold;
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = fd::makeUpsilonWithParams(fp, f, p);
    cfg.seed = seed;
    cfg.flavor = flavor;
    cfg.max_steps = 6'000'000;
    const auto rr = sim::runTask(
        cfg,
        [f](Env& e, Value v) { return core::upsilonFSetAgreement(e, f, v); },
        props);
    const auto rep = checkKSetAgreement(rr, f, props);
    agg.all_ok = agg.all_ok && rep.ok();
    agg.worst_distinct = std::max(agg.worst_distinct, rep.distinct);
    steps.push_back(rr.steps);
  }
  agg.median_steps = bench::median(std::move(steps));
  return agg;
}

}  // namespace
}  // namespace wfd

int main() {
  using namespace wfd;
  bench::banner(
      "E2/E7 — Fig. 2: Upsilon^f-based f-resilient f-set-agreement "
      "(Theorem 6), 20 seeds per row");

  Table t({"n+1", "f", "stab", "noise hold", "snapshot", "median steps",
           "max distinct (<=f)", "Theorem 6"});
  struct Row {
    int n_plus_1;
    int f;
    Time stab;
    Time hold;
    SnapshotFlavor flavor;
  };
  std::vector<Row> rows;
  for (int n_plus_1 : {4, 5, 6}) {
    for (int f = 1; f <= n_plus_1 - 1; ++f) {
      rows.push_back({n_plus_1, f, 400, 1, SnapshotFlavor::kNative});
    }
  }
  // Misleading slow noise (stable-looking wrong sets).
  rows.push_back({5, 3, 2000, 150, SnapshotFlavor::kNative});
  rows.push_back({6, 4, 2000, 150, SnapshotFlavor::kNative});
  // Register-implemented snapshots (Afek et al.).
  rows.push_back({4, 2, 400, 1, SnapshotFlavor::kAfek});
  rows.push_back({5, 3, 400, 1, SnapshotFlavor::kAfek});

  for (const auto& r : rows) {
    const auto agg = sweep(r.n_plus_1, r.f, r.stab, r.hold, r.flavor);
    t.addRow({bench::fmt(r.n_plus_1), bench::fmt(r.f), bench::fmt(r.stab),
              bench::fmt(r.hold),
              r.flavor == SnapshotFlavor::kAfek ? "afek" : "native",
              bench::fmt(agg.median_steps), bench::fmt(agg.worst_distinct),
              bench::passFail(agg.all_ok && agg.worst_distinct <= r.f)});
  }
  t.print();
  std::puts("Claim reproduced if every row PASSes: Upsilon^f + registers");
  std::puts("solve f-set-agreement in E_f (including the wait-free f = n).");
  return 0;
}
