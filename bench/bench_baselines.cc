// Experiment E10 (paper Corollaries 3-4, context): Upsilon — strictly
// weaker failure information than Omega_n — still solves the same task.
// Cost comparison: Fig. 1 with Upsilon vs the Omega_n baseline vs full
// Omega-consensus, across detector stabilization times.
//
// Expected shape: all three terminate; the Upsilon-based protocol pays
// more steps (it only learns "one set that is NOT the correct set"),
// Omega-consensus pays the most agreement (1 value) from the strongest
// information. The paper's point is qualitative — weaker information
// suffices — which the PASS column certifies.
#include "bench_util.h"
#include "core/boosting.h"

namespace wfd {
namespace {

using bench::Table;
using core::checkKSetAgreement;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;

struct Agg {
  Time median_steps = 0;
  int worst_distinct = 0;
  bool all_ok = true;
};

Agg sweep(int n_plus_1, int k, Time stab, const char* algo) {
  Agg agg;
  std::vector<Time> steps;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto fp = FailurePattern::random(n_plus_1, n_plus_1 - 1, stab + 200,
                                           seed * 41 + 11);
    std::vector<Value> props(static_cast<std::size_t>(n_plus_1));
    for (int i = 0; i < n_plus_1; ++i) props[static_cast<std::size_t>(i)] = 100 + i;
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.seed = seed;
    cfg.max_steps = 5'000'000;
    sim::AlgoFn fn;
    if (std::string(algo) == "fig1-upsilon") {
      cfg.fd = fd::makeUpsilon(fp, stab, seed);
      fn = [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); };
    } else if (std::string(algo) == "omega_n-baseline") {
      cfg.fd = fd::makeOmegaK(fp, n_plus_1 - 1, stab, seed);
      fn = [n_plus_1](Env& e, Value v) {
        return core::omegaKSetAgreement(e, n_plus_1 - 1, v);
      };
    } else if (std::string(algo) == "boosting") {
      cfg.fd = fd::makeOmegaK(fp, n_plus_1 - 1, stab, seed);
      fn = [](Env& e, Value v) { return core::consensusBoosting(e, v); };
    } else {
      cfg.fd = fd::makeOmega(fp, stab, seed);
      fn = [](Env& e, Value v) { return core::omegaConsensus(e, v); };
    }
    const auto rr = sim::runTask(cfg, fn, props);
    const auto rep = checkKSetAgreement(rr, k, props);
    agg.all_ok = agg.all_ok && rep.ok();
    agg.worst_distinct = std::max(agg.worst_distinct, rep.distinct);
    steps.push_back(rr.steps);
  }
  agg.median_steps = bench::median(std::move(steps));
  return agg;
}

}  // namespace
}  // namespace wfd

int main() {
  using namespace wfd;
  bench::banner(
      "E10 — Corollaries 3/4 context: Fig. 1 (Upsilon) vs Omega_n baseline "
      "vs Omega consensus, 20 seeds per row, up to n crashes");

  Table t({"algorithm", "detector", "n+1", "agreement k", "stab",
           "median steps", "max distinct", "solves task"});
  for (int n_plus_1 : {3, 4, 6}) {
    for (const Time stab : {200L, 2000L}) {
      const auto a = sweep(n_plus_1, n_plus_1 - 1, stab, "fig1-upsilon");
      t.addRow({"Fig.1 set-agreement", "Upsilon (weakest)",
                bench::fmt(n_plus_1), bench::fmt(n_plus_1 - 1),
                bench::fmt(stab), bench::fmt(a.median_steps),
                bench::fmt(a.worst_distinct), bench::passFail(a.all_ok)});
      const auto b = sweep(n_plus_1, n_plus_1 - 1, stab, "omega_n-baseline");
      t.addRow({"[18] set-agreement", "Omega_n (stronger)",
                bench::fmt(n_plus_1), bench::fmt(n_plus_1 - 1),
                bench::fmt(stab), bench::fmt(b.median_steps),
                bench::fmt(b.worst_distinct), bench::passFail(b.all_ok)});
      const auto c = sweep(n_plus_1, 1, stab, "omega-consensus");
      t.addRow({"consensus", "Omega (strongest)", bench::fmt(n_plus_1), "1",
                bench::fmt(stab), bench::fmt(c.median_steps),
                bench::fmt(c.worst_distinct), bench::passFail(c.all_ok)});
      const auto d = sweep(n_plus_1, 1, stab, "boosting");
      t.addRow({"consensus boosting [13,21]", "Omega_n + n-cons objects",
                bench::fmt(n_plus_1), "1", bench::fmt(stab),
                bench::fmt(d.median_steps), bench::fmt(d.worst_distinct),
                bench::passFail(d.all_ok)});
    }
  }
  t.print();
  std::puts("Corollary 3 reproduced: Omega_n is NOT the weakest detector for");
  std::puts("n-set-agreement — the strictly weaker Upsilon also solves it");
  std::puts("(PASS on every Fig.1 row), see bench_thm1_separation for the");
  std::puts("strictness half. Corollary 4 follows with [13].");
  return 0;
}
