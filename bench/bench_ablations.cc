// Experiment E13 — ablations: every clause of Upsilon's definition and
// every phase of the constructions is load-bearing. Removing any one of
// them produces a measurable failure (livelock or agreement violation),
// under schedules the intact system handles.
#include <functional>
#include <set>

#include "bench_util.h"
#include "core/ablations.h"

namespace wfd {
namespace {

using bench::Table;
using core::Pick;
using sim::Coro;
using sim::Env;
using sim::FailurePattern;
using sim::Unit;

void axiomTable() {
  bench::banner(
      "E13a — Upsilon's axioms ablated (Fig. 1, lockstep, 200k-step budget)");
  Table t({"n+1", "detector history", "legal Upsilon?", "deciders",
           "outcome"});
  for (int n_plus_1 : {3, 5}) {
    const auto fp = FailurePattern::failureFree(n_plus_1);
    struct Case {
      const char* label;
      fd::FdPtr det;
      bool legal;
    };
    const Case cases[] = {
        {"stable U != correct(F)", fd::makeUpsilon(fp, 0), true},
        {"stable U == correct(F)   [axiom 2 dropped]",
         core::axiom2ViolatingDetector(fp), false},
        {"flapping forever         [axiom 1 dropped]",
         core::axiom1ViolatingDetector(), false},
    };
    for (const auto& c : cases) {
      const int deciders =
          core::fig1DecidersUnder(c.det, n_plus_1, 200'000);
      const bool expected = c.legal ? deciders == n_plus_1 : deciders == 0;
      t.addRow({bench::fmt(n_plus_1), c.label, c.legal ? "yes" : "NO",
                bench::fmt(deciders),
                expected ? (c.legal ? "decides" : "livelocks (as proved)")
                         : "UNEXPECTED"});
    }
  }
  t.print();
}

Coro<Unit> naiveShot(Env& env, Value v) {
  const Pick p =
      co_await core::kConvergeNaive(env, sim::ObjKey{"e13.conv"}, 1, v);
  env.note(p.committed ? "commit" : "adopt", RegVal(p.value));
  co_return Unit{};
}

Coro<Unit> realShot(Env& env, Value v) {
  const Pick p = co_await core::kConverge(env, sim::ObjKey{"e13.conv"}, 1, v);
  env.note(p.committed ? "commit" : "adopt", RegVal(p.value));
  co_return Unit{};
}

// Exhaustively count C-Agreement violations over all interleavings of
// two processes, for the naive one-phase converge vs the real one.
int countViolations(const sim::AlgoFn& algo, int steps_each) {
  int violations = 0;
  std::vector<int> remaining = {steps_each, steps_each};
  std::vector<Pid> seq;
  const std::function<void()> rec = [&] {
    if (static_cast<int>(seq.size()) == 2 * steps_each) {
      sim::RunConfig cfg;
      cfg.n_plus_1 = 2;
      sim::Run run(cfg, algo, {100, 101});
      sim::ScriptedPolicy policy(seq,
                                 std::make_unique<sim::RoundRobinPolicy>());
      const Time taken = run.scheduler().run(policy, 1000);
      const auto rr = run.finish(taken);
      bool any_commit = false;
      std::set<Value> picked;
      for (const auto& e : rr.trace().events()) {
        if (e.kind != sim::EventKind::kNote) continue;
        any_commit |= (e.label == "commit");
        picked.insert(e.value.asInt());
      }
      if (any_commit && picked.size() > 1) ++violations;
      return;
    }
    for (Pid p = 0; p < 2; ++p) {
      if (remaining[static_cast<std::size_t>(p)] == 0) continue;
      --remaining[static_cast<std::size_t>(p)];
      seq.push_back(p);
      rec();
      seq.pop_back();
      ++remaining[static_cast<std::size_t>(p)];
    }
  };
  rec();
  return violations;
}

void convergeTable() {
  bench::banner(
      "E13b — k-converge's phase 2 ablated (exhaustive 2-process schedules, "
      "k = 1, distinct inputs)");
  Table t({"routine", "schedules", "C-Agreement violations", "outcome"});
  const int naive = countViolations(
      [](Env& e, Value v) { return naiveShot(e, v); }, 2);
  t.addRow({"naive 1-phase converge", "6", bench::fmt(naive),
            naive > 0 ? "broken (as expected)" : "UNEXPECTED"});
  const int real = countViolations(
      [](Env& e, Value v) { return realShot(e, v); }, 4);
  t.addRow({"k-converge (full)", "70", bench::fmt(real),
            real == 0 ? "correct" : "BROKEN"});
  t.print();
}

}  // namespace
}  // namespace wfd

int main() {
  using namespace wfd;
  axiomTable();
  convergeTable();
  std::puts("");
  std::puts("Every ablated ingredient fails exactly as the paper's proofs");
  std::puts("predict: axiom (2) is what guarantees a faulty gladiator or a");
  std::puts("correct citizen; axiom (1) is what lets rounds stop aborting;");
  std::puts("the tag-exchange phase is what makes commits bind adopters.");
  return 0;
}
