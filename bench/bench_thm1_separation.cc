// Experiment E4 (paper Theorem 1): Upsilon is strictly weaker than
// Omega_n for n >= 2.
//
//   Easy direction — Omega_n -> Upsilon by complementation: the emulated
//   output stabilizes shortly after the source does (table 1).
//   Hard direction — no algorithm extracts Omega_n from Upsilon: the
//   proof's adversary forces every candidate either to switch its output
//   forever (switch count grows linearly in the horizon, table 2) or to
//   freeze on a value that a legal crash pattern renders illegal
//   (table 3).
//
// The easy-direction sweep is (row x seed)-parallel: all cells go into
// one batch (sim/batch.h) sharded over --jobs workers, with the Omega^k
// history per (pattern, stab, seed) built once in a shared FdCache. The
// hard-direction chases are inherently sequential adversary/candidate
// dialogues and stay serial.
#include "bench_util.h"

namespace wfd {
namespace {

using bench::Table;
using sim::BatchCell;
using sim::CellResult;
using sim::Env;
using sim::FailurePattern;

void easyDirection(const bench::BenchArgs& args) {
  // --memo attaches the whole-run ReportCache: the sweep's detectors come
  // from the FdCache by digestable construction, so a re-invocation (or a
  // widened grid sharing rows) answers repeated cells without re-running.
  sim::ReportCache memo;
  const sim::BatchRunner runner(args.batchOptions(&memo));
  std::printf(
      "\n=== E4a — easy direction: Omega_n -> Upsilon (complementation), "
      "jobs=%d, %s, memo %s ===\n",
      runner.jobs(), args.steal ? "stealing" : "static shards",
      args.memo ? "on" : "off");
  struct Row {
    int n_plus_1;
    Time stab;
  };
  std::vector<Row> rows;
  for (int n_plus_1 : {3, 4, 5, 6}) {
    for (const Time stab : {100L, 1000L}) rows.push_back({n_plus_1, stab});
  }
  constexpr std::size_t kSeeds = 10;
  sim::FdCache fds;
  sim::BatchStats stats;
  const auto results = runner.run(
      rows.size() * kSeeds,
      [&rows, &fds](std::size_t i) {
        const Row& r = rows[i / kSeeds];
        const std::uint64_t seed = static_cast<std::uint64_t>(i % kSeeds) + 1;
        const auto fp =
            FailurePattern::random(r.n_plus_1, r.n_plus_1 - 1, 60, seed * 3);
        BatchCell cell;
        cell.cfg.n_plus_1 = r.n_plus_1;
        cell.cfg.fp = fp;
        cell.cfg.fd = fds.omegaK(fp, r.n_plus_1 - 1, r.stab, seed);
        cell.cfg.seed = seed;
        cell.cfg.max_steps = r.stab * 3 + 30'000;
        cell.algo = [](Env& e, Value) { return core::omegaKToUpsilonF(e); };
        cell.proposals =
            std::vector<Value>(static_cast<std::size_t>(r.n_plus_1), 0);
        const int f = r.n_plus_1 - 1;
        cell.post = [f](const sim::RunReport& rep, CellResult& out) {
          const auto check = core::checkEmulatedUpsilonF(rep.result, f);
          if (!check.ok()) {
            out.check_ok = false;
            out.check_detail = check.violation;
          }
          out.metrics["last_change"] = static_cast<double>(check.last_change);
        };
        cell.memo_family = "thm1-easy";
        return cell;
      },
      &stats);
  Table t({"n+1", "stab(Omega_n)", "emulation last change", "axioms"});
  for (std::size_t row = 0; row < rows.size(); ++row) {
    bool ok = true;
    std::vector<Time> last;
    for (std::size_t i = row * kSeeds; i < (row + 1) * kSeeds; ++i) {
      ok = ok && results[i].ok();
      const auto it = results[i].metrics.find("last_change");
      last.push_back(it == results[i].metrics.end()
                         ? 0
                         : static_cast<Time>(it->second));
    }
    t.addRow({bench::fmt(rows[row].n_plus_1), bench::fmt(rows[row].stab),
              bench::fmt(bench::median(std::move(last))),
              bench::passFail(ok)});
  }
  t.print();
  std::printf("pool: %zu steal ops moved %zu cells; memo %zu hits / %zu "
              "misses; utilization %.2f\n",
              stats.steal_ops, stats.stolen_cells, stats.memo_hits,
              stats.memo_misses, stats.utilization());
  if (!args.json_path.empty()) {
    bench::JsonWriter json("bench_thm1_separation", runner.jobs());
    json.note("memo", args.memo ? "on" : "off");
    bool all_ok = true;
    for (const CellResult& r : results) all_ok = all_ok && r.ok();
    json.metric("easy_direction_all_ok", all_ok ? 1.0 : 0.0);
    bench::emitBatchStats(json, "batch", stats);
    json.write(args.json_path);
  }
}

void hardDirectionChase() {
  bench::banner(
      "E4b — hard direction: the Theorem 1 adversary vs an adaptive "
      "candidate (lowest-heartbeat)");
  Table t({"n+1", "horizon", "forced switches", "last switch", "switches/10k",
           "verdict"});
  const auto cand = [](Env& e, Value) {
    return core::candidateLowestHeartbeat(e);
  };
  for (int n_plus_1 : {3, 4, 6}) {
    int prev_switches = 0;
    for (const Time horizon : {25'000L, 50'000L, 100'000L, 200'000L}) {
      const auto s = core::soloChase(cand, n_plus_1, horizon);
      const bool growing = s.switches > prev_switches;
      prev_switches = s.switches;
      t.addRow({bench::fmt(n_plus_1), bench::fmt(horizon),
                bench::fmt(s.switches), bench::fmt(s.last_switch_time),
                bench::fmt(10'000.0 * s.switches /
                           static_cast<double>(s.steps)),
                growing ? "never stabilizes" : "STABILIZED?"});
    }
  }
  t.print();
}

void hardDirectionExposure() {
  bench::banner(
      "E4c — hard direction: crash exposure vs a static candidate "
      "(complement-of-Upsilon)");
  Table t({"n+1", "candidate output", "claimed Omega_n set", "contains correct",
           "verdict"});
  const auto cand = [](Env& e, Value) {
    return core::candidateComplementOrStatic(e);
  };
  for (int n_plus_1 : {3, 4, 5}) {
    const auto s = core::crashExposure(cand, n_plus_1, 40'000);
    const ProcSet claimed = s.stable_pc.complement(n_plus_1);
    t.addRow({bench::fmt(n_plus_1),
              s.stable ? s.stable_pc.toString() : "(unstable)",
              claimed.toString(), s.legal ? "yes" : "NO",
              (s.stable && !s.legal) ? "illegal -> defeated" : "?"});
  }
  t.print();
}

}  // namespace
}  // namespace wfd

int main(int argc, char** argv) {
  using namespace wfd;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  easyDirection(args);
  hardDirectionChase();
  hardDirectionExposure();
  std::puts("");
  std::puts("Theorem 1 reproduced: the easy direction stabilizes (PASS rows),");
  std::puts("while each candidate extraction of Omega_n from Upsilon is");
  std::puts("defeated — by unbounded forced switching or by an exposing");
  std::puts("crash pattern. (The theorem itself quantifies over all");
  std::puts("algorithms; the adversary here is the proof's construction.)");
  return 0;
}
