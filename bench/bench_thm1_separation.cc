// Experiment E4 (paper Theorem 1): Upsilon is strictly weaker than
// Omega_n for n >= 2.
//
//   Easy direction — Omega_n -> Upsilon by complementation: the emulated
//   output stabilizes shortly after the source does (table 1).
//   Hard direction — no algorithm extracts Omega_n from Upsilon: the
//   proof's adversary forces every candidate either to switch its output
//   forever (switch count grows linearly in the horizon, table 2) or to
//   freeze on a value that a legal crash pattern renders illegal
//   (table 3).
#include "bench_util.h"

namespace wfd {
namespace {

using bench::Table;
using sim::Env;
using sim::FailurePattern;

void easyDirection() {
  bench::banner("E4a — easy direction: Omega_n -> Upsilon (complementation)");
  Table t({"n+1", "stab(Omega_n)", "emulation last change", "axioms"});
  for (int n_plus_1 : {3, 4, 5, 6}) {
    for (const Time stab : {100L, 1000L}) {
      bool ok = true;
      std::vector<Time> last;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto fp =
            FailurePattern::random(n_plus_1, n_plus_1 - 1, 60, seed * 3);
        sim::RunConfig cfg;
        cfg.n_plus_1 = n_plus_1;
        cfg.fp = fp;
        cfg.fd = fd::makeOmegaK(fp, n_plus_1 - 1, stab, seed);
        cfg.seed = seed;
        cfg.max_steps = stab * 3 + 30'000;
        const auto rr = sim::runTask(
            cfg, [](Env& e, Value) { return core::omegaKToUpsilonF(e); },
            std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
        const auto rep = core::checkEmulatedUpsilonF(rr, n_plus_1 - 1);
        ok = ok && rep.ok();
        last.push_back(rep.last_change);
      }
      t.addRow({bench::fmt(n_plus_1), bench::fmt(stab),
                bench::fmt(bench::median(std::move(last))),
                bench::passFail(ok)});
    }
  }
  t.print();
}

void hardDirectionChase() {
  bench::banner(
      "E4b — hard direction: the Theorem 1 adversary vs an adaptive "
      "candidate (lowest-heartbeat)");
  Table t({"n+1", "horizon", "forced switches", "last switch", "switches/10k",
           "verdict"});
  const auto cand = [](Env& e, Value) {
    return core::candidateLowestHeartbeat(e);
  };
  for (int n_plus_1 : {3, 4, 6}) {
    int prev_switches = 0;
    for (const Time horizon : {25'000L, 50'000L, 100'000L, 200'000L}) {
      const auto s = core::soloChase(cand, n_plus_1, horizon);
      const bool growing = s.switches > prev_switches;
      prev_switches = s.switches;
      t.addRow({bench::fmt(n_plus_1), bench::fmt(horizon),
                bench::fmt(s.switches), bench::fmt(s.last_switch_time),
                bench::fmt(10'000.0 * s.switches /
                           static_cast<double>(s.steps)),
                growing ? "never stabilizes" : "STABILIZED?"});
    }
  }
  t.print();
}

void hardDirectionExposure() {
  bench::banner(
      "E4c — hard direction: crash exposure vs a static candidate "
      "(complement-of-Upsilon)");
  Table t({"n+1", "candidate output", "claimed Omega_n set", "contains correct",
           "verdict"});
  const auto cand = [](Env& e, Value) {
    return core::candidateComplementOrStatic(e);
  };
  for (int n_plus_1 : {3, 4, 5}) {
    const auto s = core::crashExposure(cand, n_plus_1, 40'000);
    const ProcSet claimed = s.stable_pc.complement(n_plus_1);
    t.addRow({bench::fmt(n_plus_1),
              s.stable ? s.stable_pc.toString() : "(unstable)",
              claimed.toString(), s.legal ? "yes" : "NO",
              (s.stable && !s.legal) ? "illegal -> defeated" : "?"});
  }
  t.print();
}

}  // namespace
}  // namespace wfd

int main() {
  using namespace wfd;
  easyDirection();
  hardDirectionChase();
  hardDirectionExposure();
  std::puts("");
  std::puts("Theorem 1 reproduced: the easy direction stabilizes (PASS rows),");
  std::puts("while each candidate extraction of Omega_n from Upsilon is");
  std::puts("defeated — by unbounded forced switching or by an exposing");
  std::puts("crash pattern. (The theorem itself quantifies over all");
  std::puts("algorithms; the adversary here is the proof's construction.)");
  return 0;
}
