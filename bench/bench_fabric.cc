// E20: distributed campaign fabric + persistent result store
// (BENCH_fabric.json).
//
// The E17-shaped heavy-tailed campaign — a cluster of watched Fig. 3
// extraction cells ~100x the median Fig. 1 chaos cell, packed at the
// FRONT of the submission order — now sharded across worker PROCESSES
// (sim/fabric/fabric.h) instead of threads:
//
//   * static per-process ranges (--no-steal shape): the whole heavy
//     cluster lands in process 0's range, the adversarial baseline;
//   * block stealing (the default): a drained process takes the back
//     half of the most-loaded peer's queued blocks, so the tail spreads.
//
// Balance is gated on STEP utilization (sum of per-process simulation
// steps over procs x max), the deterministic, hardware-independent
// makespan measure — wall-clock cannot show balance on the single-core
// CI host, step counts can. The persistent phase then wipes a cache
// directory, runs the campaign cold (filling the store through each
// worker's ReportCache), and reruns it with FRESH processes: every
// cacheable cell must come back from disk (hit rate 1.00), and in full
// mode the warm rerun must beat the cold one by >= 50x wall. Every
// phase certifies its results cell-by-cell against the serial jobs=1
// pass first — no speedup is reported for wrong answers.
#include <filesystem>

#include "bench_util.h"

namespace wfd {
namespace {

using sim::BatchCell;
using sim::BatchStats;
using sim::CellResult;
using sim::CrashInjection;
using sim::Env;
using sim::FailurePattern;
using sim::GlitchKind;
using sim::WatchdogConfig;
using sim::fabric::FabricOptions;
using sim::fabric::runFabric;

int g_failures = 0;

void require(bool ok, const std::string& what) {
  if (!ok) {
    std::printf("  FAILURE: %s\n", what.c_str());
    ++g_failures;
  }
}

// Light cell: one Fig. 1 chaos run, a few thousand steps.
BatchCell lightCell(std::uint64_t seed) {
  const int n_plus_1 = 4;
  BatchCell cell;
  cell.cfg.n_plus_1 = n_plus_1;
  cell.cfg.fp = FailurePattern::withCrashes(n_plus_1, {{n_plus_1 - 1, 60}});
  cell.cfg.fd =
      fd::makeUpsilon(*cell.cfg.fp, ProcSet::full(n_plus_1), /*stab=*/250,
                      seed);
  cell.cfg.seed = seed;
  sim::ChaosConfig chaos;
  chaos.seed = seed;
  chaos.max_faulty = 2;
  chaos.glitch = {GlitchKind::kScrambleNoise, 0, seed * 31};
  chaos.crashes.push_back({CrashInjection::Strategy::kRandom, -1, 0,
                           /*horizon=*/900, /*count=*/1, seed * 7});
  cell.chaos = chaos;
  cell.watchdog = WatchdogConfig{3'000'000, 0, 3};
  cell.algo = [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); };
  cell.proposals = {100, 101, 102, 103};
  cell.memo_family = "bf-light";
  return cell;
}

// Heavy cell: a watched Fig. 3 extraction that runs its whole budget.
BatchCell heavyCell(std::uint64_t seed, Time budget) {
  const int n_plus_1 = 4;
  BatchCell cell;
  cell.cfg.n_plus_1 = n_plus_1;
  cell.cfg.fp = FailurePattern::withCrashes(n_plus_1, {{3, 60}});
  cell.cfg.fd = fd::makeOmega(*cell.cfg.fp, /*stab=*/120, seed);
  cell.cfg.seed = seed;
  cell.cfg.max_steps = budget + 10;
  const auto phi = core::phiOmegaK(n_plus_1);
  cell.algo = [phi](Env& e, Value) { return core::extractUpsilonF(e, phi); };
  cell.proposals = std::vector<Value>(4, 0);
  cell.watchdog = WatchdogConfig{budget, 0, 0};
  cell.memo_family = "bf-heavy";
  return cell;
}

bool sameResult(const CellResult& x, const CellResult& y) {
  return x.index == y.index && x.verdict == y.verdict && x.error == y.error &&
         x.steps == y.steps && x.decisions == y.decisions &&
         x.trace_hash == y.trace_hash;
}

}  // namespace
}  // namespace wfd

int main(int argc, char** argv) {
  using namespace wfd;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const int procs = args.procs > 1 ? args.procs : 2;
  const int jobs = args.jobs > 0 ? args.jobs : 2;
  const int reps = args.quick ? 3 : 3;
  const int heavy_cells = args.quick ? 6 : 16;
  const int light_cells = args.quick ? 90 : 400;
  const Time heavy_budget = args.quick ? 60'000 : 120'000;
  const std::string cache_dir =
      args.cache_dir.empty() ? "bench_fabric_cache" : args.cache_dir;

  std::printf("\n=== E20 — campaign fabric + persistent store (procs=%d, "
              "jobs=%d/proc, %d heavy + %d light cells) ===\n",
              procs, jobs, heavy_cells, light_cells);

  // Heavy cluster FIRST: contiguous range dealing gives process 0 the
  // whole cluster, the adversarial case for static sharding.
  std::vector<BatchCell> cells;
  cells.reserve(static_cast<std::size_t>(heavy_cells + light_cells));
  for (int i = 0; i < heavy_cells; ++i) {
    cells.push_back(heavyCell(static_cast<std::uint64_t>(i) + 1, heavy_budget));
  }
  for (int i = 0; i < light_cells; ++i) {
    cells.push_back(lightCell(static_cast<std::uint64_t>(i) + 1));
  }

  sim::BatchOptions serial_opts;
  serial_opts.jobs = 1;
  const auto truth = sim::BatchRunner(serial_opts).run(cells);

  auto certify = [&](const std::vector<CellResult>& got, const char* mode) {
    bool same = got.size() == truth.size();
    for (std::size_t i = 0; same && i < truth.size(); ++i) {
      same = sameResult(truth[i], got[i]);
    }
    require(same, std::string(mode) + " results differ from the serial pass");
  };

  FabricOptions base;
  base.procs = procs;
  base.batch.jobs = jobs;
  // One cell per block: the finest deterministic granularity, so the
  // worst-case process imbalance is a single heavy cell, not a cluster
  // of them — the per-assignment round-trip is microseconds against
  // multi-millisecond cells.
  base.block = 1;

  // Phase 1: balance. Static ranges vs block stealing, best-of-N wall;
  // step utilization is identical across reps (the schedule's step
  // counts are deterministic given the assignment order is).
  auto bestOf = [&](const FabricOptions& opts, const char* mode,
                    BatchStats& best_stats) {
    double best = -1;
    for (int r = 0; r < reps; ++r) {
      BatchStats stats;
      certify(runFabric(opts, cells, &stats), mode);
      if (best < 0 || stats.wall_s < best) {
        best = stats.wall_s;
        best_stats = stats;
      }
    }
    return best;
  };

  FabricOptions static_opts = base;
  static_opts.steal = false;
  BatchStats static_stats;
  const double static_s = bestOf(static_opts, "static", static_stats);
  BatchStats steal_stats;
  const double steal_s = bestOf(base, "steal", steal_stats);

  const double util_static = static_stats.stepUtilization();
  const double util_steal = steal_stats.stepUtilization();
  require(util_steal >= 0.9,
          "block stealing balances the heavy tail (step utilization " +
              bench::fmt(util_steal) + " < 0.90)");

  // Phase 2: the persistent store. Wipe the directory, run cold (store
  // fills through each worker's memo), then rerun with fresh processes.
  // Under --keep-cache the wipe is skipped and the "cold" pass must
  // instead warm ENTIRELY from a previous invocation's store — the CI
  // restart gate: persistence across real process exits, not just forks.
  if (!args.keep_cache) std::filesystem::remove_all(cache_dir);
  std::size_t cacheable = 0;
  for (const auto& cell : cells) {
    cacheable += sim::cellKey(cell).has_value() ? 1u : 0u;
  }
  if (cacheable == 0) {
    std::printf("note: no memo-eligible cells (WFD_AUDIT latch active?) — "
                "the warm phase measures audited re-execution, not hits\n");
  }
  FabricOptions store_opts = base;
  store_opts.batch.memo_capacity = args.cache_cap;
  store_opts.batch.cache_dir = cache_dir;
  store_opts.batch.cache_version = bench::BenchArgs::gitSha();

  BatchStats cold_stats;
  certify(runFabric(store_opts, cells, &cold_stats), "store-cold");
  const double cold_s = cold_stats.wall_s;
  if (args.keep_cache) {
    require(cold_stats.memo_hits == cacheable &&
                cold_stats.disk_hits == cacheable,
            "--keep-cache rerun warmed every cacheable cell from the "
            "previous invocation's store (" +
                std::to_string(cold_stats.disk_hits) + "/" +
                std::to_string(cacheable) + " from disk)");
  } else {
    require(cold_stats.memo_hits == 0, "cold pass took no memo hits");
  }

  double warm_s = -1;
  BatchStats warm_stats;
  for (int r = 0; r < reps; ++r) {
    BatchStats stats;
    certify(runFabric(store_opts, cells, &stats), "store-warm");
    if (warm_s < 0 || stats.wall_s < warm_s) {
      warm_s = stats.wall_s;
      warm_stats = stats;
    }
  }
  const double warm_speedup = warm_s > 0 ? cold_s / warm_s : 0;
  const double hit_rate =
      warm_stats.memo_hits + warm_stats.memo_misses > 0
          ? static_cast<double>(warm_stats.memo_hits) /
                static_cast<double>(warm_stats.memo_hits +
                                    warm_stats.memo_misses)
          : 0;
  require(warm_stats.memo_hits == cacheable,
          "warm fabric answered every cacheable cell from the store (" +
              std::to_string(warm_stats.memo_hits) + "/" +
              std::to_string(cacheable) + ")");
  require(warm_stats.disk_hits == cacheable,
          "warm hits came from DISK across fresh processes (" +
              std::to_string(warm_stats.disk_hits) + "/" +
              std::to_string(cacheable) + ")");
  if (!args.quick && cacheable > 0 && !args.keep_cache) {
    // Only gated in full mode (the quick campaign's cold pass is short
    // enough that fork + store setup overhead blurs the ratio) and only
    // against a genuinely cold baseline (--keep-cache warms both sides).
    require(warm_speedup >= 50,
            "warm persistent rerun >= 50x faster than cold (" +
                bench::fmt(warm_speedup) + "x)");
  }

  bench::Table t({"mode", "wall s", "step util", "proc steals", "memo hits",
                  "disk hits"});
  auto statsRow = [&](const char* mode, double wall, const BatchStats& s) {
    t.addRow({mode, bench::fmt(wall), bench::fmt(s.stepUtilization()),
              bench::fmt(static_cast<int>(s.proc_steal_ops)),
              bench::fmt(static_cast<int>(s.memo_hits)),
              bench::fmt(static_cast<int>(s.disk_hits))});
  };
  statsRow("static ranges", static_s, static_stats);
  statsRow("block steal", steal_s, steal_stats);
  statsRow("store cold", cold_s, cold_stats);
  statsRow("store warm", warm_s, warm_stats);
  t.print();
  std::printf("step utilization: static %.2f -> steal %.2f (procs=%d)\n",
              util_static, util_steal, procs);
  std::printf("warm persistent rerun vs cold: %.1fx wall, hit rate %.2f\n",
              warm_speedup, hit_rate);

  const std::string json_path =
      args.json_path.empty() ? "BENCH_fabric.json" : args.json_path;
  bench::JsonWriter json("bench_fabric", jobs);
  json.note("mode", args.quick ? "quick" : "full");
  json.note("cache_dir", cache_dir);
  json.note("keep_cache", args.keep_cache ? "yes" : "no");
  json.metric("procs", procs);
  json.metric("reps_best_of", reps);
  json.metric("heavy_cells", heavy_cells);
  json.metric("light_cells", light_cells);
  json.metric("wall_static_s", static_s);
  json.metric("wall_steal_s", steal_s);
  json.metric("wall_store_cold_s", cold_s);
  json.metric("wall_store_warm_s", warm_s);
  json.metric("warm_speedup_wall", warm_speedup);
  json.metric("warm_hit_rate", hit_rate);
  json.metric("memo_eligible_cells", static_cast<double>(cacheable));
  json.metric("step_utilization_static", util_static);
  json.metric("step_utilization_steal", util_steal);
  bench::emitBatchStats(json, "static", static_stats);
  bench::emitBatchStats(json, "steal", steal_stats);
  bench::emitBatchStats(json, "cold", cold_stats);
  bench::emitBatchStats(json, "warm", warm_stats);
  json.metric("failures", g_failures);
  json.write(json_path);

  if (g_failures > 0) {
    std::printf("\nbench_fabric FAILED: %d finding(s)\n", g_failures);
    return 1;
  }
  std::puts("\nbench_fabric passed: fabric and store reproduce the serial "
            "results");
  return 0;
}
